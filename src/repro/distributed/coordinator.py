"""The sweep coordinator: enqueue shards, babysit workers, assemble.

The coordinator owns three things and nothing else:

1. **Store setup** — bind the store to the sweep's fingerprint and enqueue
   one shard per point (idempotent, so re-running a crashed coordinator
   against the same store resumes instead of restarting).
2. **Worker supervision** — spawn ``repro worker`` subprocesses against the
   store, expire stale leases eagerly, and replace workers that die (each
   replacement gets a fresh worker id: restarted processes must not replay
   a dead sibling's chaos stream).  The coordinator holds no work state —
   killing *it* and re-running is also safe.
3. **Assembly** — once every shard is committed, read results in shard
   index order and rebuild the exact :class:`SweepResult` (and, span for
   span, the exact trace) the serial :func:`complexity_sweep` would have
   produced.  Byte-identity is the acceptance test, not a best effort.

The ``workers=`` path of the batch-first core is untouched: in-process
trial parallelism happens *inside* a shard, distributed execution happens
*across* shards, and :func:`run_local` is the degenerate one-process case
of the latter.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.distributed.chaos import ChaosSchedule
from repro.distributed.spec import SweepSpec
from repro.distributed.store import ResultsStore, StoreError
from repro.distributed.worker import Worker, WorkerOptions, WorkerSummary
from repro.experiments.sweeps import SweepResult, _point_from_json, fit_power_law
from repro.observability.trace import RecordingTracer, Tracer


def create_store(
    store_path: "str | os.PathLike",
    spec: SweepSpec,
    *,
    clock: Callable[[], float] = time.time,
    resume: bool = True,
) -> ResultsStore:
    """Open (or create) the store for ``spec`` and enqueue its shards.

    With ``resume=False`` an existing store file is removed first;
    otherwise an existing store must carry this sweep's fingerprint
    (committed shards are kept — that is the crash-recovery path).
    """
    path = Path(store_path)
    if not resume and path.exists():
        path.unlink()
        for suffix in ("-wal", "-shm"):
            sidecar = Path(str(path) + suffix)
            if sidecar.exists():
                sidecar.unlink()
    store = ResultsStore(path, clock=clock)
    store.initialise(spec.fingerprint(), spec.to_json(), spec.shards())
    return store


def spec_from_store(store: ResultsStore) -> SweepSpec:
    raw = store.spec()
    if raw is None:
        raise StoreError(f"store {store.path} holds no sweep spec")
    return SweepSpec.from_json(raw)


def assemble(store: ResultsStore, *, trace: "Tracer | None" = None) -> SweepResult:
    """Rebuild the serial sweep's exact result from a finished store.

    Points are read in shard index order — never completion order — and
    each shard's recorded sub-trace is absorbed into ``trace`` in that same
    order, which is precisely how the serial loop would have emitted them.
    Raises :class:`StoreError` while shards are still outstanding.
    """
    counts = store.counts()
    if counts["shards"] == 0:
        raise StoreError(f"store {store.path} has no shards enqueued")
    if counts["committed"] != counts["shards"]:
        raise StoreError(
            f"sweep incomplete: {counts['committed']}/{counts['shards']} shards "
            "committed — run workers to finish it"
        )
    spec = spec_from_store(store)
    rows = store.results()
    expected = list(range(len(spec.values)))
    if [row.index for row in rows] != expected:
        raise StoreError(
            f"store {store.path} results are not the contiguous shard range "
            f"{expected[0]}..{expected[-1]}"
        )
    points = [_point_from_json(row.result["point"]) for row in rows]
    if trace is not None:
        for row in rows:
            trace.absorb(list(row.trace))
    xs = [float(getattr(p, spec.axis)) for p in points]
    ys = [p.estimate.samples for p in points]
    exponent = fit_power_law(xs, ys) if len(points) >= 2 else math.nan
    return SweepResult(axis=spec.axis, points=points, exponent=exponent)


def run_local(
    store: ResultsStore,
    *,
    worker_id: str = "local",
    kernel: str = "auto",
    workers: "int | None" = None,
    lease_seconds: float = 300.0,
    chaos: "ChaosSchedule | None" = None,
) -> WorkerSummary:
    """Drain the store in-process: the thin local special case.

    A plain :class:`Worker` run against the store from this process — the
    exact code path subprocess workers take, minus the process boundary.
    """
    options = WorkerOptions(
        worker_id=worker_id,
        lease_seconds=lease_seconds,
        kernel=kernel,
        workers=workers,
        chaos=chaos,
    )
    return Worker(store, options).run()


# ---------------------------------------------------------------------------
# Subprocess supervision
# ---------------------------------------------------------------------------


def _worker_argv(
    store_path: "str | os.PathLike",
    worker_id: str,
    *,
    lease_seconds: float,
    kernel: str,
    chaos: "ChaosSchedule | None",
) -> list[str]:
    argv = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--store",
        str(store_path),
        "--worker-id",
        worker_id,
        "--lease-seconds",
        str(lease_seconds),
        "--kernel",
        kernel,
    ]
    if chaos is not None:
        argv += chaos.to_args()
    return argv


def _worker_env() -> dict[str, str]:
    """Subprocess env with this repro package importable (CI runs from a
    source tree; workers must resolve the same build the coordinator did)."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    return env


@dataclass
class FleetReport:
    """What a supervised distributed run did, beyond the sweep itself."""

    workers_spawned: int = 0
    restarts: int = 0
    leases_expired: int = 0
    wall_seconds: float = 0.0
    exit_codes: dict = field(default_factory=dict)


def run_fleet(
    store: ResultsStore,
    *,
    processes: int = 2,
    lease_seconds: float = 15.0,
    kernel: str = "auto",
    chaos: "ChaosSchedule | None" = None,
    poll_seconds: float = 0.2,
    max_restarts: int = 20,
    timeout: float = 600.0,
) -> FleetReport:
    """Drive subprocess workers against ``store`` until the sweep finishes.

    Crash-tolerant by construction: a worker that dies (chaos kill, OOM,
    operator SIGKILL) is replaced with a fresh id — up to ``max_restarts``
    times fleet-wide — and its abandoned lease expires on schedule.  The
    loop also expires stale leases eagerly so stragglers re-dispatch without
    waiting for the next claim to trip over them.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    report = FleetReport()
    env = _worker_env()
    procs: dict[str, subprocess.Popen] = {}
    spawned = 0

    def _spawn() -> None:
        nonlocal spawned
        worker_id = f"w{spawned}"
        spawned += 1
        report.workers_spawned += 1
        procs[worker_id] = subprocess.Popen(
            _worker_argv(
                store.path,
                worker_id,
                lease_seconds=lease_seconds,
                kernel=kernel,
                chaos=chaos,
            ),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    start = time.monotonic()
    for _ in range(processes):
        _spawn()
    try:
        while not store.finished():
            if time.monotonic() - start > timeout:
                raise StoreError(
                    f"distributed sweep did not finish within {timeout:g}s "
                    f"({store.counts()})"
                )
            report.leases_expired += len(store.expire_leases())
            for worker_id, proc in list(procs.items()):
                code = proc.poll()
                if code is None:
                    continue
                report.exit_codes[worker_id] = code
                del procs[worker_id]
                if store.finished():
                    continue
                if code != 0 and report.restarts >= max_restarts:
                    raise StoreError(
                        f"worker {worker_id} exited with {code} and the "
                        f"restart budget ({max_restarts}) is spent"
                    )
                # Exit code 0 mid-sweep means the worker drained (operator
                # SIGTERM) or saw the sweep finished; only replace crashes.
                if code != 0:
                    report.restarts += 1
                    _spawn()
            time.sleep(poll_seconds)
    finally:
        # Graceful drain for survivors, escalating only if they ignore it.
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 10.0
        for worker_id, proc in procs.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                report.exit_codes[worker_id] = proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                report.exit_codes[worker_id] = proc.wait()
    report.wall_seconds = time.monotonic() - start
    return report


def distributed_sweep(
    spec: SweepSpec,
    store_path: "str | os.PathLike",
    *,
    processes: int = 2,
    lease_seconds: float = 15.0,
    kernel: str = "auto",
    chaos: "ChaosSchedule | None" = None,
    resume: bool = True,
    timeout: float = 600.0,
    trace: "Tracer | None" = None,
) -> tuple[SweepResult, FleetReport]:
    """End-to-end distributed sweep: create store, run fleet, assemble.

    The assembled :class:`SweepResult` (and absorbed trace) is byte-identical
    to ``complexity_sweep`` run serially with the same spec — under any
    worker count, any kill schedule, any interleaving of lease expiries and
    duplicate completions.  That is the module's contract, and the chaos
    matrix tests hold it to the byte.
    """
    store = create_store(store_path, spec, resume=resume)
    try:
        if processes == 1 and chaos is None:
            # One process and no faults to inject: skip the subprocess
            # machinery entirely (the thin local special case).
            start = time.monotonic()
            run_local(
                store,
                kernel=kernel,
                lease_seconds=max(lease_seconds, 300.0),
            )
            report = FleetReport(workers_spawned=1)
            report.wall_seconds = time.monotonic() - start
        else:
            report = run_fleet(
                store,
                processes=processes,
                lease_seconds=lease_seconds,
                kernel=kernel,
                chaos=chaos,
                timeout=timeout,
            )
        result = assemble(store, trace=trace)
        return result, report
    finally:
        store.close()
