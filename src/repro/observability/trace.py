"""Hierarchical span tracing with a deterministic JSONL event stream.

Design constraints, in order of importance:

1. **Determinism.**  Two runs of the same seeded experiment must produce the
   same event stream, byte for byte, once wall-clock fields are stripped —
   including across worker counts (per-trial sub-traces are exported from
   the workers and re-sequenced in trial order by the parent).  Events are
   therefore appended at span *close*, in close order, with a parent-side
   sequence number; the only nondeterministic field is ``duration_s``,
   which :func:`strip_wall_clock` removes and which never enters checkpoint
   fingerprints.
2. **Zero cost when off.**  The default :data:`NULL_TRACER` allocates
   nothing per span: ``span()`` returns one shared, stateless context
   manager and ``event()`` is a constant-time no-op, so instrumented code
   paths stay within noise of un-instrumented ones (gated in CI by
   ``benchmarks/check_trace_overhead.py``).
3. **Schema stability.**  Every event serialises to exactly the keys of
   :data:`EVENT_KEYS`; :func:`validate_event` rejects anything else, and CI
   validates every trace file a benchmark writes.

Event stream shape::

    {"kind": "span",  "name": "test/sieve/round", "seq": 7, "depth": 2,
     "attrs": {"round": 1, "removed": 3, "samples": 4096},
     "duration_s": 0.0123}
    {"kind": "event", "name": "ledger", "seq": 12, "depth": 0,
     "attrs": {"stages": {...}, "samples_used": 51234, ...},
     "duration_s": null}

``name`` is the slash-joined span path (hierarchy survives flattening);
``depth`` is the nesting depth at emission; ``attrs`` carries only
deterministic, JSON-scalar payloads (sample counts, round indices,
rejection reasons) — never timestamps.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

#: Fields that carry wall-clock measurements.  Stripped by
#: :func:`strip_wall_clock` before any byte comparison or fingerprint.
WALL_CLOCK_FIELDS = ("duration_s",)

#: Exactly the keys a serialised event carries (a compatibility surface).
EVENT_KEYS = frozenset({"kind", "name", "seq", "depth", "attrs", "duration_s"})

_KINDS = frozenset({"span", "event"})


@dataclass(frozen=True)
class TraceEvent:
    """One flattened trace record (a closed span or a point event)."""

    kind: str  # "span" | "event"
    name: str  # slash-joined path, e.g. "test/sieve/round"
    seq: int  # parent-side emission order (deterministic)
    depth: int  # nesting depth at emission
    attrs: dict = field(default_factory=dict)
    duration_s: "float | None" = None  # wall clock; None for point events

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "seq": self.seq,
            "depth": self.depth,
            "attrs": self.attrs,
            "duration_s": self.duration_s,
        }


class _NullSpan:
    """The shared no-op span: stateless, reentrant, allocation-free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """The tracer interface *and* its no-op implementation.

    Code under instrumentation holds a ``Tracer`` and calls ``span`` /
    ``event`` unconditionally; the base class discards everything at
    constant cost.  Check :attr:`enabled` before computing *expensive*
    attributes only — plain ints/strings are cheaper to pass than to gate.
    """

    enabled: bool = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def absorb(self, events: "Iterable[dict] | None", **extra_attrs: Any) -> None:
        pass


#: The process-wide default tracer: drop everything.
NULL_TRACER = Tracer()


class _RecordingSpan:
    """A live span of a :class:`RecordingTracer`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: "RecordingTracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_RecordingSpan":
        self._tracer._push(self._name)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = self._tracer._clock() - self._start
        self._tracer._pop(self._name, self._attrs, elapsed)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach deterministic result attributes to the span."""
        self._attrs.update(attrs)


class RecordingTracer(Tracer):
    """An in-memory tracer producing the deterministic event stream.

    Spans nest via a path stack; each closed span and each point event is
    appended to :attr:`events` with a monotonically increasing ``seq``.
    ``clock`` is injectable for tests (defaults to ``time.perf_counter``,
    a monotonic clock — wall-clock durations never run backwards).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.events: list[TraceEvent] = []
        self._clock = clock
        self._seq = 0
        self._stack: list[str] = []

    # -- span machinery ----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _RecordingSpan:
        return _RecordingSpan(self, _check_name(name), attrs)

    def _push(self, name: str) -> None:
        self._stack.append(name)

    def _pop(self, name: str, attrs: dict, elapsed: float) -> None:
        path = "/".join(self._stack)
        depth = len(self._stack) - 1
        self._stack.pop()
        self._append("span", path, depth, attrs, elapsed)

    def event(self, name: str, **attrs: Any) -> None:
        path = "/".join(self._stack + [_check_name(name)])
        self._append("event", path, len(self._stack), attrs, None)

    def _append(
        self, kind: str, name: str, depth: int, attrs: dict, duration: "float | None"
    ) -> None:
        self.events.append(
            TraceEvent(
                kind=kind,
                name=name,
                seq=self._seq,
                depth=depth,
                attrs=attrs,
                duration_s=duration,
            )
        )
        self._seq += 1

    # -- cross-process assembly --------------------------------------------

    def export(self) -> list[dict]:
        """The event stream as picklable/JSON-able dicts (worker → parent)."""
        return [e.to_json() for e in self.events]

    def absorb(self, events: "Iterable[dict] | None", **extra_attrs: Any) -> None:
        """Splice a sub-trace (a worker trial's exported events) into this
        stream, re-sequencing and re-rooting under the current span path.

        Callers absorb sub-traces **in trial order**, which is what makes
        serial and parallel runs byte-identical: each trial's events are
        internally deterministic, and the splice order is fixed by the
        caller, not by completion order.  ``extra_attrs`` (e.g. the trial
        index) are merged into every absorbed event's attrs.
        """
        if not events:
            return
        prefix = "/".join(self._stack)
        base_depth = len(self._stack)
        for raw in events:
            validate_event(raw)
            name = f"{prefix}/{raw['name']}" if prefix else raw["name"]
            attrs = dict(raw["attrs"])
            attrs.update(extra_attrs)
            self._append(
                raw["kind"], name, base_depth + raw["depth"], attrs, raw["duration_s"]
            )


def _check_name(name: str) -> str:
    if not name or "/" in name:
        raise ValueError(f"span/event names must be non-empty and slash-free: {name!r}")
    return name


# ---------------------------------------------------------------------------
# JSONL serialisation, canonicalisation, schema validation
# ---------------------------------------------------------------------------


def _as_dicts(events: "Sequence[TraceEvent | dict]") -> list[dict]:
    return [e.to_json() if isinstance(e, TraceEvent) else e for e in events]


def write_jsonl(path: "str | os.PathLike", events: "Sequence[TraceEvent | dict]") -> None:
    """Write one event per line (sorted keys — stable diffs), atomically
    *and durably* (tmp file + fsync + rename + directory fsync, the same
    path sweep checkpoints use — a crash mid-write never leaves a torn
    trace file on disk)."""
    from repro.util.atomicio import atomic_write_text

    payload = (
        "\n".join(json.dumps(e, sort_keys=True) for e in _as_dicts(events)) + "\n"
        if events
        else ""
    )
    atomic_write_text(path, payload)


def read_jsonl(path: "str | os.PathLike") -> list[dict]:
    """Load a trace file, validating every line against the event schema."""
    events: list[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON — {exc}") from exc
            try:
                validate_event(raw)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            events.append(raw)
    return events


def strip_wall_clock(event: dict) -> dict:
    """A copy of ``event`` without wall-clock fields (for byte comparison)."""
    return {k: v for k, v in event.items() if k not in WALL_CLOCK_FIELDS}


def canonical_jsonl(events: "Sequence[TraceEvent | dict]") -> str:
    """The deterministic byte representation: wall clock stripped, keys
    sorted.  Two runs of the same seeded experiment must agree on this
    string exactly, at any worker count."""
    return "".join(
        json.dumps(strip_wall_clock(e), sort_keys=True) + "\n" for e in _as_dicts(events)
    )


def validate_event(event: object) -> None:
    """Raise ``ValueError`` unless ``event`` matches the trace schema."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be an object, got {type(event).__name__}")
    extra = set(event) - EVENT_KEYS
    missing = EVENT_KEYS - set(event)
    if extra or missing:
        raise ValueError(
            f"bad event keys: unknown {sorted(extra)}, missing {sorted(missing)}"
        )
    if event["kind"] not in _KINDS:
        raise ValueError(f"kind must be one of {sorted(_KINDS)}, got {event['kind']!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        raise ValueError(f"name must be a non-empty string, got {event['name']!r}")
    if not isinstance(event["seq"], int) or isinstance(event["seq"], bool) or event["seq"] < 0:
        raise ValueError(f"seq must be a non-negative int, got {event['seq']!r}")
    if (
        not isinstance(event["depth"], int)
        or isinstance(event["depth"], bool)
        or event["depth"] < 0
    ):
        raise ValueError(f"depth must be a non-negative int, got {event['depth']!r}")
    if not isinstance(event["attrs"], dict):
        raise ValueError(f"attrs must be an object, got {type(event['attrs']).__name__}")
    duration = event["duration_s"]
    if duration is not None and not isinstance(duration, (int, float)):
        raise ValueError(f"duration_s must be a number or null, got {duration!r}")
    if isinstance(duration, float) and duration < 0:
        raise ValueError(f"duration_s must be non-negative, got {duration}")


def validate_trace(path: "str | os.PathLike") -> int:
    """Validate a whole trace file; returns the number of events.

    Also checks the stream-level invariant that ``seq`` values are strictly
    increasing (assembly in trial order guarantees it).
    """
    events = read_jsonl(path)
    last = -1
    for event in events:
        if event["seq"] <= last:
            raise ValueError(
                f"{path}: seq not strictly increasing at seq={event['seq']}"
            )
        last = event["seq"]
    return len(events)
