"""Structured observability: tracing, metrics, and sample-ledger audit.

The tester's headline claim is its *sample complexity*, so the library's
observability layer is built around making every sample draw traceable and
reconcilable against the Theorem 3.1 budget:

* :mod:`repro.observability.trace` — a hierarchical span tracer emitting a
  deterministic JSONL event stream (wall-clock durations are carried but
  kept out of every fingerprint/byte comparison);
* :mod:`repro.observability.metrics` — a process-wide registry of counters,
  gauges and distributions (samples per stage, sieve removals, rejection
  reasons, retry/fault counts, cache hits);
* :mod:`repro.observability.ledger` — integer-exact per-stage sample
  accounting that fails loudly on leaks or double-counting.

The default tracer is a no-op (:data:`NULL_TRACER`): un-traced runs pay one
attribute lookup and a constant-time context-manager enter/exit per stage,
keeping the hot path within noise of the un-instrumented pipeline.
"""

from repro.observability.ledger import LedgerError, SampleLedger
from repro.observability.metrics import (
    Counter,
    Distribution,
    Gauge,
    MetricsRegistry,
    get_metrics,
)
from repro.observability.trace import (
    NULL_TRACER,
    RecordingTracer,
    TraceEvent,
    Tracer,
    canonical_jsonl,
    read_jsonl,
    strip_wall_clock,
    validate_event,
    validate_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Distribution",
    "Gauge",
    "LedgerError",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "SampleLedger",
    "TraceEvent",
    "Tracer",
    "canonical_jsonl",
    "get_metrics",
    "read_jsonl",
    "strip_wall_clock",
    "validate_event",
    "validate_trace",
    "write_jsonl",
]
