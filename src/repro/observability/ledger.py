"""Integer-exact reconciliation of per-stage sample draws.

The sample ledger is the audit trail behind the paper's headline claim:
every stage of Algorithm 1 records the *integer* number of samples it drew,
and the ledger proves three invariants before a verdict is returned:

1. **No double-counting** — a stage may be recorded at most once
   (:meth:`SampleLedger.record` raises :class:`LedgerError` on a repeat);
2. **No leaks** — the per-stage totals must sum *exactly* (integer
   equality, no ``approx``) to the source's total draw count
   (:meth:`SampleLedger.reconcile`);
3. **Budget respected** — the total must not exceed the (ceiled, integer)
   ``algorithm1_budget``-derived cap when one is set.

A failed invariant is a bug in the accounting code, never a property of
the input distribution, so the ledger fails loudly instead of clamping.
"""

from __future__ import annotations

from typing import Iterator, Mapping


class LedgerError(RuntimeError):
    """A sample-accounting invariant was violated (leak, double count, or
    budget overrun) — always an implementation bug, never expected."""


class SampleLedger:
    """Append-only per-stage integer sample accounting."""

    def __init__(self, *, budget_cap: "int | None" = None) -> None:
        if budget_cap is not None:
            if budget_cap != int(budget_cap):
                raise LedgerError(f"budget cap must be an integer, got {budget_cap!r}")
            budget_cap = int(budget_cap)
        self._stages: "dict[str, int]" = {}
        self.budget_cap = budget_cap

    def record(self, stage: str, samples: int) -> None:
        """Record the draws of one stage; repeats are double-counting."""
        if stage in self._stages:
            raise LedgerError(
                f"stage {stage!r} already recorded ({self._stages[stage]} samples) "
                f"— double-counting"
            )
        if isinstance(samples, bool) or samples != int(samples):
            raise LedgerError(
                f"stage {stage!r} drew a non-integer sample count: {samples!r}"
            )
        if samples < 0:
            raise LedgerError(f"stage {stage!r} drew a negative count: {samples}")
        self._stages[stage] = int(samples)

    @property
    def total(self) -> int:
        return sum(self._stages.values())

    @property
    def stages(self) -> "Mapping[str, int]":
        """Per-stage totals in record order (read-only copy)."""
        return dict(self._stages)

    def __contains__(self, stage: str) -> bool:
        return stage in self._stages

    def __iter__(self) -> "Iterator[str]":
        return iter(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def reconcile(self, samples_used: int) -> int:
        """Check the ledger against the source's observed total.

        Returns the reconciled total; raises :class:`LedgerError` if the
        stage sum differs from ``samples_used`` by even one sample (a leak
        if the ledger is short, double-counting if it is long) or exceeds
        the budget cap.
        """
        if isinstance(samples_used, bool) or samples_used != int(samples_used):
            raise LedgerError(f"samples_used must be an integer, got {samples_used!r}")
        samples_used = int(samples_used)
        total = self.total
        if total != samples_used:
            kind = "leak (draws missing from ledger)" if total < samples_used else (
                "double-counting (ledger exceeds draws)"
            )
            raise LedgerError(
                f"ledger does not reconcile: stages sum to {total}, source drew "
                f"{samples_used} — {kind}; stages={self.stages}"
            )
        if self.budget_cap is not None and total > self.budget_cap:
            raise LedgerError(
                f"total draws {total} exceed budget cap {self.budget_cap}"
            )
        return total

    def as_attrs(self) -> dict:
        """The ledger as deterministic trace-event attributes."""
        return {
            "stages": self.stages,
            "total": self.total,
            "budget_cap": self.budget_cap,
        }
