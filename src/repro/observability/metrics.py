"""A lightweight process-wide metrics registry.

Three instrument kinds, mirroring the usual statsd/Prometheus split:

* :class:`Counter` — monotone integer totals (samples drawn per stage,
  sieve removals, rejection reasons, retries, cache hits/misses);
* :class:`Gauge` — last-written values (current budget cap, worker count);
* :class:`Distribution` — streaming summaries (count/sum/min/max/mean) of
  observed values (intervals removed per sieve round, attempts per trial).

Instruments are addressed by ``name`` plus an optional frozen label tuple,
so ``counter("sieve.removed", phase="A")`` and ``phase="B"`` are distinct
series.  The registry is deliberately *not* part of any determinism or
fingerprint contract: it is diagnostic state, reset per run via
:meth:`MetricsRegistry.reset` (or per test via :func:`get_metrics`'s
returned handle).  Library code records through the module-level registry
(:func:`get_metrics`) so instrumentation never needs plumbing through
function signatures the way the tracer does.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Mapping, Tuple

_LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _series_key(name: str, labels: Mapping[str, Any]) -> _LabelKey:
    if not name:
        raise ValueError("metric name must be non-empty")
    return (name, tuple(sorted(labels.items())))


class Counter:
    """A monotone integer counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += int(amount)


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value: "float | int | None" = None
        self._lock = threading.Lock()

    @property
    def value(self) -> "float | int | None":
        return self._value

    def set(self, value: "float | int") -> None:
        with self._lock:
            self._value = value


class Distribution:
    """A streaming summary of observed values (no per-sample storage)."""

    __slots__ = ("name", "labels", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.count = 0
        self.total = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None
        self._lock = threading.Lock()

    def observe(self, value: "float | int") -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> "float | None":
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """A named collection of instruments, created on first touch.

    Re-requesting a series returns the same instrument; requesting a name
    that exists under a different instrument kind is an error (it would
    silently split the series).
    """

    def __init__(self) -> None:
        self._series: "dict[_LabelKey, Counter | Gauge | Distribution]" = {}
        self._lock = threading.Lock()

    def _get(self, cls: type, name: str, labels: Mapping[str, Any]) -> Any:
        key = _series_key(name, labels)
        with self._lock:
            found = self._series.get(key)
            if found is None:
                found = self._series[key] = cls(name, labels)
            elif type(found) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(found).__name__}, requested {cls.__name__}"
                )
            return found

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def distribution(self, name: str, **labels: Any) -> Distribution:
        return self._get(Distribution, name, labels)

    def __iter__(self) -> "Iterator[Counter | Gauge | Distribution]":
        with self._lock:
            return iter(list(self._series.values()))

    def __len__(self) -> int:
        return len(self._series)

    def reset(self) -> None:
        """Drop every series (per-run / per-test isolation)."""
        with self._lock:
            self._series.clear()

    def snapshot(self) -> "dict[str, Any]":
        """A JSON-able dump of every series, sorted for stable output."""
        out: "dict[str, Any]" = {}
        for inst in sorted(self, key=lambda i: (i.name, sorted(i.labels.items()))):
            label_part = ",".join(f"{k}={v}" for k, v in sorted(inst.labels.items()))
            key = f"{inst.name}{{{label_part}}}" if label_part else inst.name
            if isinstance(inst, Counter):
                out[key] = inst.value
            elif isinstance(inst, Gauge):
                out[key] = inst.value
            else:
                out[key] = {
                    "count": inst.count,
                    "sum": inst.total,
                    "min": inst.min,
                    "max": inst.max,
                    "mean": inst.mean,
                }
        return out


_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry library code records into."""
    return _GLOBAL
