"""Agnostic k-histogram learning ([ADLS15]-style substrate).

The paper's motivating pipeline (Section 1.1) is *test-then-learn*: once the
tester certifies ``D`` is (close to) a k-histogram, an agnostic learner with
``O(k/ε²)`` samples produces the succinct representation.  [CDGR16]'s
testing-by-learning baseline also needs such a learner.  The original
[ADLS15] algorithm is closed-source; this module implements the same
guarantee class:

* draw ``m = O(k/ε²)`` samples;
* form the empirical distribution;
* return the best ≤ k-piece *flattening* of the empirical distribution,
  found by dynamic programming over a quantile-based base partition.

By the VC inequality for the class of unions of ``O(k)`` intervals, the
empirical masses of every candidate piece are simultaneously accurate to
``O(ε/k)·…`` at this sample size, which yields the standard constant-factor
agnostic guarantee ``dTV(output, D) ≤ C·opt_k + ε``.

The base partition is a quantile grid: restricting DP breakpoints to
empirical quantile boundaries loses at most one grid cell of mass per
breakpoint (``O(ε)`` total for a grid of ``O(k/ε)`` cells), keeping the DP
polynomial in ``k/ε`` instead of ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.projection import coarse_flattening_projection
from repro.distributions.sampling import SampleSource, as_source
from repro.util.intervals import Partition
from repro.util.rng import RandomState


def merge_learner_samples(k: int, eps: float, factor: float = 4.0) -> int:
    """The learner's sample budget, ``O(k/ε²)``."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    return max(1, int(np.ceil(factor * k / eps**2)))


def quantile_partition(counts: np.ndarray, cells: int) -> Partition:
    """Partition the domain so each interval holds ≈ ``1/cells`` of the
    empirical mass, with empirically-heavy points isolated as singletons.

    Isolation matters for sparse distributions: a point carrying a cell's
    worth of mass needs borders on *both* sides, or its cell smears the
    mass over trailing zero-count points and every flattening-based
    distance computed on the grid is wildly inflated.
    """
    counts = np.asarray(counts, dtype=np.float64)
    n = len(counts)
    total = counts.sum()
    if total <= 0:
        return Partition.equal_width(n, min(cells, n))
    if cells < 1:
        raise ValueError(f"cells must be positive, got {cells}")
    cum = np.cumsum(counts) / total
    targets = np.arange(1, cells) / cells
    cuts = np.searchsorted(cum, targets, side="left") + 1
    heavy = np.flatnonzero(counts >= total / cells)
    bounds = np.unique(np.concatenate(([0], cuts, heavy, heavy + 1, [n])))
    return Partition(bounds)


def learn_histogram_agnostic(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    eps: float,
    *,
    rng: RandomState = None,
    num_samples: int | None = None,
    grid_cells: int | None = None,
    projection_engine: str = "auto",
) -> Histogram:
    """Agnostically learn the best k-histogram approximation of ``D``.

    Returns a ``Histogram`` with at most ``k`` pieces such that, with high
    probability, ``dTV(output, D) ≤ C·dTV(D, H_k) + ε`` for an absolute
    constant ``C``.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    source = as_source(dist, rng)
    m = num_samples if num_samples is not None else merge_learner_samples(k, eps)
    counts = source.draw_counts(m)
    return histogram_from_counts(
        counts, k, eps, grid_cells=grid_cells, projection_engine=projection_engine
    )


def histogram_from_counts(
    counts: np.ndarray,
    k: int,
    eps: float,
    *,
    grid_cells: int | None = None,
    projection_engine: str = "auto",
) -> Histogram:
    """The DP fit itself, from an explicit count vector (resampling-free)."""
    counts = np.asarray(counts, dtype=np.float64)
    n = len(counts)
    if counts.sum() <= 0:
        return Histogram.from_masses(Partition.trivial(n), np.ones(1))
    cells = grid_cells if grid_cells is not None else max(4 * k, int(np.ceil(k / eps)))
    cells = min(cells, n)
    base = quantile_partition(counts, cells)
    empirical = counts / counts.sum()
    # Fit to the cell-flattened empirical distribution: the VC argument only
    # controls interval masses anyway, and a base-aligned input lets the
    # projection DP take its vectorised piecewise-constant path.
    flattened = base.flatten(empirical)
    projection = coarse_flattening_projection(flattened, base, k, engine=projection_engine)
    return projection.histogram
