"""Histogram learning: agnostic merge learner and model selection."""

from repro.learning.merge import (
    histogram_from_counts,
    learn_histogram_agnostic,
    merge_learner_samples,
    quantile_partition,
)
from repro.learning.model_selection import ModelSelectionResult, select_k

__all__ = [
    "ModelSelectionResult",
    "histogram_from_counts",
    "learn_histogram_agnostic",
    "merge_learner_samples",
    "quantile_partition",
    "select_k",
]
