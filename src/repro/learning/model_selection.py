"""Model selection: find the smallest ``k`` that fits (the intro's pipeline).

Section 1.1 motivates the tester as a *model-selection* primitive: "one can
iteratively run such an algorithm (e.g., by doubling search) to look for the
smallest corresponding k", then hand that ``k`` to an agnostic learner for
an optimal conciseness/accuracy trade-off.  This module is that pipeline.

The search doubles ``k`` until the tester accepts, then binary-searches the
last octave.  Each tester invocation is majority-amplified so the whole
search (``O(log k*)`` calls) succeeds with the requested confidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backends import DEFAULT_BACKEND
from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.sampling import SampleSource, as_source
from repro.learning.merge import learn_histogram_agnostic
from repro.util.rng import RandomState
from repro.util.stats import amplification_repeats, majority


@dataclass(frozen=True)
class ModelSelectionResult:
    """Outcome of the select-then-learn pipeline."""

    k: int
    histogram: Histogram
    tests_run: int
    samples_used: float
    accepted_trace: dict  # k -> bool, every tested value


def _amplified_test(
    source: SampleSource,
    k: int,
    eps: float,
    config: TesterConfig,
    repeats: int,
    backend: str = DEFAULT_BACKEND,
    projection_engine: str = "auto",
    kernel: str = "auto",
) -> bool:
    verdicts = [
        test_histogram(
            source,
            k,
            eps,
            config=config,
            backend=backend,
            projection_engine=projection_engine,
            kernel=kernel,
        ).accept
        for _ in range(repeats)
    ]
    return majority(verdicts)


def select_k(
    dist: DiscreteDistribution | SampleSource,
    eps: float,
    *,
    k_max: int | None = None,
    config: TesterConfig | None = None,
    confidence: float = 0.9,
    repeats: int | None = None,
    rng: RandomState = None,
    backend: str = DEFAULT_BACKEND,
    projection_engine: str = "auto",
    kernel: str = "auto",
) -> ModelSelectionResult:
    """Doubling + binary search for the smallest accepted ``k``, then learn.

    Returns the selected ``k`` and the learned k-histogram.  The guarantee
    mirrors the intro's discussion: the selected ``k*`` satisfies
    ``dTV(D, H_{k*}) < ε`` (it was accepted) while ``H_{k*/2}`` was rejected,
    i.e. ``k*`` is within a factor 2 of the smallest ε-sufficient model.

    Raises ``ValueError`` if even ``k_max`` is rejected (no histogram model
    of permitted size fits the data at this ε).
    """
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    source = as_source(dist, rng)
    if config is None:
        config = TesterConfig.practical()
    if k_max is None:
        k_max = source.n
    if k_max < 1:
        raise ValueError(f"k_max must be at least 1, got {k_max}")

    if repeats is None:
        # Each amplified call must survive a union bound over O(log k_max)
        # calls; derive the repeat count from the target confidence.  Pass
        # an explicit ``repeats`` (e.g. 3) to trade confidence for budget.
        calls_bound = max(2, 2 * (k_max.bit_length() + 1))
        per_call_delta = (1.0 - confidence) / calls_bound
        repeats = amplification_repeats(per_call_delta)
    elif repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")

    start = source.samples_drawn
    trace: dict[int, bool] = {}
    tests = 0

    # Doubling phase.
    k = 1
    accepted_k: int | None = None
    while True:
        probe = min(k, k_max)
        ok = _amplified_test(
            source, probe, eps, config, repeats, backend, projection_engine, kernel
        )
        trace[probe] = ok
        tests += 1
        if ok:
            accepted_k = probe
            break
        if probe == k_max:
            raise ValueError(
                f"no k <= k_max={k_max} accepted at eps={eps}: "
                "the distribution has no permissible histogram model"
            )
        k *= 2

    # Binary search inside (last rejected, accepted_k].
    lo = accepted_k // 2 + 1 if accepted_k > 1 else 1
    hi = accepted_k
    while lo < hi:
        mid = (lo + hi) // 2
        ok = _amplified_test(
            source, mid, eps, config, repeats, backend, projection_engine, kernel
        )
        trace[mid] = ok
        tests += 1
        if ok:
            hi = mid
        else:
            lo = mid + 1
    selected = hi

    histogram = learn_histogram_agnostic(
        source, selected, eps, projection_engine=projection_engine
    )
    return ModelSelectionResult(
        k=selected,
        histogram=histogram,
        tests_run=tests,
        samples_used=source.samples_drawn - start,
        accepted_trace=trace,
    )
