"""Command-line interface: ``python -m repro <command> …``.

Six subcommands mirroring the library's main entry points:

* ``test``    — run Algorithm 1 on a named workload (``--trace`` writes the
  structured span trace as JSONL);
* ``closeness`` — run the two-sample closeness tester (DKN17 reduction) on
  a named paired workload;
* ``select``  — model selection (smallest ε-sufficient k) on a workload;
* ``budget``  — print the sample-budget landscape for given (n, k, ε);
* ``sweep``   — empirical sample-complexity sweep along one axis, with
  ``--checkpoint``/``--resume`` for interruption-safe long runs and
  ``--workers`` for trial-parallel execution;
* ``bench``   — repeated-trial acceptance benchmark of Algorithm 1 on a
  named workload, fanned out over ``--workers`` processes (results are
  bit-identical to serial; ``--compare-serial`` verifies and reports the
  speedup);
* ``serve``   — drive the always-on multi-session service over a
  deterministic request population (``--chaos`` injects the standard fault
  schedule; every session ends VERDICT/DEGRADED/EVICTED/REJECTED and the
  run replays byte-identically under a fixed seed; SIGTERM/SIGINT drain
  in-flight sessions and still emit the final report);
* ``worker``  — run one distributed-sweep worker against a results store
  (claim shards, heartbeat, commit idempotently; SIGTERM drains);
* ``report``  — inspect a results store: progress, per-worker stats, the
  fault audit log, and exact zero-drift sample accounting;
* ``trace``   — inspect a trace file (``summarize`` renders per-span
  aggregates, ``validate`` checks the JSONL schema and seq invariant).

``sweep --store`` switches the sweep to the distributed executor: shards
are enqueued into a crash-consistent sqlite store and drained by
``--worker-procs`` supervised subprocesses (or by separately launched
``repro worker`` processes on other terminals/hosts sharing the file);
the assembled output is byte-identical to the serial run.

All RNG seeding goes through :func:`repro.util.rng.ensure_rng` so every
entry point shares one seed-handling convention.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import OrderedDict
from typing import Sequence

from repro.core.backends import BACKENDS, DEFAULT_BACKEND, backend_budget
from repro.core.budget import budget_table_row
from repro.core.config import TesterConfig
from repro.core.tester import STAGE_ORDER, test_histogram
from repro.experiments.report import format_table
from repro.experiments.runner import acceptance_probability
from repro.experiments.sweeps import HistogramTester, complexity_sweep
from repro.experiments.workloads import REGISTRY, BoundWorkload, make
from repro.kernels import KERNELS, kernel_seconds_snapshot, resolve_kernel
from repro.learning.model_selection import select_k
from repro.observability.trace import (
    NULL_TRACER,
    RecordingTracer,
    read_jsonl,
    validate_trace,
    write_jsonl,
)
from repro.util.rng import ensure_rng


def _add_common(
    parser: argparse.ArgumentParser, *, backends: Sequence[str] = BACKENDS
) -> None:
    parser.add_argument("--n", type=int, default=10_000, help="domain size")
    parser.add_argument("--k", type=int, default=8, help="histogram pieces")
    parser.add_argument("--eps", type=float, default=0.25, help="TV proximity")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--profile",
        choices=["practical", "paper"],
        default="practical",
        help="constant profile (paper = literal worst-case constants)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "fast", "dense"],
        default="auto",
        help="projection DP engine for the check stage "
        "(execution knob only; never changes the verdict)",
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="auto",
        help="compute kernels for the hot loops (auto | python | numba; "
        "execution knob only — bit-identical results; REPRO_KERNEL "
        "overrides the default)",
    )
    parser.add_argument(
        "--backend",
        choices=list(backends),
        default=DEFAULT_BACKEND,
        help="tester backend (changes budgets and verdicts; part of sweep "
        "fingerprints, unlike --engine/--kernel/--workers)",
    )


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for trial-parallel loops "
        "(default serial; 0 = one per CPU; results identical at any count)",
    )


def _add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the structured span trace to this JSONL file "
        "(inspect with `repro trace summarize PATH`)",
    )


def _config(args: argparse.Namespace) -> TesterConfig:
    return TesterConfig.paper() if args.profile == "paper" else TesterConfig.practical()


def _stage_rows(verdict) -> list[str]:
    """Stage names from *both* audit dicts, in stable pipeline order.

    A stage can legitimately appear in only one dict (e.g. a timing with no
    samples attributed, or vice versa), so iterate the key union rather than
    either dict alone — otherwise rows silently vanish from the table.
    """
    union = set(verdict.stage_timings) | set(verdict.stage_samples)
    ordered = [s for s in STAGE_ORDER if s in union]
    ordered += sorted(union - set(STAGE_ORDER))  # future-proof: unknown stages last
    return ordered


def _print_stage_table(verdict) -> None:
    """Per-stage samples and wall-clock seconds from a Verdict's audit trail."""
    for stage in _stage_rows(verdict):
        used = verdict.stage_samples.get(stage)
        secs = verdict.stage_timings.get(stage)
        used_s = f"{used:>14,}" if used is not None else f"{'—':>14}"
        secs_s = f"{secs:>9.4f}s" if secs is not None else f"{'—':>10}"
        print(f"  {stage:<10}: {used_s} samples  {secs_s}")


def _print_kernel_table() -> None:
    """Per-op dispatch accounting from the metrics registry: which kernel
    ran each hot loop, how many times, and for how long."""
    rows = kernel_seconds_snapshot()
    if not rows:
        print("  (no kernel dispatches recorded)")
        return
    for op, kernel, calls, seconds in rows:
        print(f"  {op:<28} {kernel:<8} {calls:>9,} calls  {seconds:>9.4f}s")


def _cmd_test(args: argparse.Namespace) -> int:
    dist = make(args.workload, args.n, args.k, args.eps, rng=ensure_rng(args.seed))
    tracer = RecordingTracer() if args.trace else NULL_TRACER
    verdict = test_histogram(
        dist, args.k, args.eps, config=_config(args), rng=args.seed + 1,
        backend=args.backend, projection_engine=args.engine, kernel=args.kernel,
        trace=tracer,
    )
    print(f"workload  : {args.workload} ({REGISTRY[args.workload].nature})")
    print(f"backend   : {args.backend}")
    print(f"kernel    : {args.kernel} (resolved: {resolve_kernel(args.kernel)})")
    print(f"verdict   : {'ACCEPT' if verdict.accept else 'REJECT'} (stage: {verdict.stage})")
    print(f"reason    : {verdict.reason}")
    print(f"samples   : {verdict.samples_used:,}")
    _print_stage_table(verdict)
    if args.stage_timings:
        print("kernel dispatches (op / kernel / calls / seconds):")
        _print_kernel_table()
    if args.trace:
        write_jsonl(args.trace, tracer.export())
        print(f"trace     : {args.trace} ({len(tracer.events)} events)")
    return 0


def _cmd_closeness(args: argparse.Namespace) -> int:
    from repro.core.closeness import closeness_budget, test_closeness
    from repro.experiments.workloads import CLOSENESS_REGISTRY, make_pair

    p, q = make_pair(args.workload, args.n, args.k, args.eps, rng=ensure_rng(args.seed))
    tracer = RecordingTracer() if args.trace else NULL_TRACER
    verdict = test_closeness(
        p, q, args.k, args.eps, config=_config(args), rng=args.seed + 1,
        kernel=args.kernel, trace=tracer,
    )
    nature = CLOSENESS_REGISTRY[args.workload].nature
    print(f"workload  : {args.workload} ({nature})")
    print(f"kernel    : {args.kernel} (resolved: {resolve_kernel(args.kernel)})")
    print(f"verdict   : {'ACCEPT' if verdict.accept else 'REJECT'} (stage: {verdict.stage})")
    print(f"reason    : {verdict.reason}")
    print(f"samples   : {verdict.samples_used:,} "
          f"(p: {verdict.samples_p:,}, q: {verdict.samples_q:,})")
    budget = closeness_budget(args.n, args.k, args.eps, config=_config(args))
    print(f"budget    : {budget:,.0f} (worst case, both streams)")
    _print_stage_table(verdict)
    if args.stage_timings:
        print("kernel dispatches (op / kernel / calls / seconds):")
        _print_kernel_table()
    if args.trace:
        write_jsonl(args.trace, tracer.export())
        print(f"trace     : {args.trace} ({len(tracer.events)} events)")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    dist = make(args.workload, args.n, args.k, args.eps, rng=args.seed)
    result = select_k(
        dist, args.eps, k_max=args.k_max, repeats=args.repeats,
        config=_config(args), rng=args.seed + 1, backend=args.backend,
        projection_engine=args.engine, kernel=args.kernel,
    )
    print(f"workload   : {args.workload}")
    print(f"selected k : {result.k}")
    print(f"probes     : {sorted(result.accepted_trace)}")
    print(f"samples    : {result.samples_used:,.0f}")
    print(f"summary    : {result.histogram.num_pieces} pieces")
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    row = budget_table_row(args.n, args.k, args.eps)
    config = _config(args)
    print(
        format_table(
            ["quantity", "samples"],
            [
                ["this paper (Thm 1.1)", row["this_paper_ub"]],
                ["lower bound (Thm 1.2)", row["lower_bound"]],
                ["ILR12", row["ilr12"]],
                ["CDGR16", row["cdgr16"]],
                ["learn offline", row["learn_offline"]],
            ]
            + [
                [f"{backend} worst case ({args.profile})",
                 int(backend_budget(backend, args.n, args.k, args.eps, config))]
                for backend in BACKENDS
            ],
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    workload = BoundWorkload(args.workload, args.n, args.k, args.eps)
    tester = HistogramTester(
        args.k, args.eps, _config(args), args.backend, args.kernel
    )

    def timed(workers: int | None):
        start = time.perf_counter()
        estimate = acceptance_probability(
            workload, tester, trials=args.trials, rng=args.seed, workers=workers
        )
        return estimate, time.perf_counter() - start

    estimate, elapsed = timed(args.workers)
    print(f"workload  : {args.workload} (n={args.n}, k={args.k}, eps={args.eps})")
    print(f"workers   : {args.workers if args.workers is not None else 1}")
    print(f"estimate  : {estimate}")
    print(f"wall time : {elapsed:.2f}s ({args.trials / elapsed:.1f} trials/s)")
    if args.stage_timings:
        # One representative in-process trial — aggregated parallel trials
        # don't surface Verdict audit fields, so profile a single run.
        gen = ensure_rng(args.seed)
        verdict = test_histogram(
            workload(gen), args.k, args.eps, config=_config(args),
            rng=args.seed, backend=args.backend, projection_engine=args.engine,
            kernel=args.kernel,
        )
        print(f"stage timings (1 representative trial, "
              f"backend={args.backend}, engine={args.engine}, "
              f"kernel={args.kernel}):")
        _print_stage_table(verdict)
        print("kernel dispatches (op / kernel / calls / seconds):")
        _print_kernel_table()
    if args.compare_serial:
        serial_estimate, serial_elapsed = timed(None)
        identical = serial_estimate == estimate
        print(f"serial    : {serial_elapsed:.2f}s "
              f"(speedup {serial_elapsed / elapsed:.2f}x, "
              f"results {'identical' if identical else 'DIFFER'})")
        if not identical:
            print("error     : parallel result differs from serial — "
                  "determinism contract violated", file=sys.stderr)
            return 1
    return 0


def _print_sweep_result(args: argparse.Namespace, result) -> None:
    rows = [
        [getattr(p, result.axis), p.estimate.samples, p.estimate.scale,
         p.estimate.evaluations]
        for p in result.points
    ]
    print(
        format_table(
            [result.axis, "samples/trial", "budget scale", "evaluations"], rows
        )
    )
    print(f"fitted exponent: {result.exponent:.3f}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    values = [float(v) for v in args.values.split(",") if v.strip()]
    if not values:
        raise SystemExit("--values must name at least one axis value")
    tracer = RecordingTracer() if args.trace else NULL_TRACER
    if args.store:
        from repro.distributed import SweepSpec, distributed_sweep

        if args.checkpoint:
            raise SystemExit(
                "--store and --checkpoint are alternatives: the results "
                "store *is* the distributed sweep's checkpoint"
            )
        spec = SweepSpec(
            axis=args.axis,
            values=tuple(values),
            n=args.n,
            k=args.k,
            eps=args.eps,
            trials=args.trials,
            bisection_steps=args.bisection_steps,
            seed=args.seed,
            backend=args.backend,
            task=args.task,
            config=_config(args),
        )
        result, fleet = distributed_sweep(
            spec,
            args.store,
            processes=args.worker_procs,
            lease_seconds=args.lease_seconds,
            kernel=args.kernel,
            resume=args.resume,
            trace=tracer if args.trace else None,
        )
        _print_sweep_result(args, result)
        print(f"store          : {args.store}")
        print(f"fleet          : {fleet.workers_spawned} worker(s), "
              f"{fleet.restarts} restart(s), {fleet.leases_expired} lease "
              f"expiries, {fleet.wall_seconds:.2f}s wall")
        if args.trace:
            write_jsonl(args.trace, tracer.export())
            print(f"trace          : {args.trace} ({len(tracer.events)} events)")
        return 0
    result = complexity_sweep(
        args.axis,
        values,
        n=args.n,
        k=args.k,
        eps=args.eps,
        config=_config(args),
        trials=args.trials,
        bisection_steps=args.bisection_steps,
        rng=args.seed,
        checkpoint=args.checkpoint,
        resume=args.resume,
        workers=args.workers,
        backend=args.backend,
        kernel=args.kernel,
        task=args.task,
        trace=tracer,
    )
    _print_sweep_result(args, result)
    if args.checkpoint:
        print(f"checkpoint     : {args.checkpoint}")
    if args.trace:
        write_jsonl(args.trace, tracer.export())
        print(f"trace          : {args.trace} ({len(tracer.events)} events)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ChaosConfig, ServiceConfig, TesterService, build_requests

    chaos = ChaosConfig(
        sessions=args.sessions,
        n=args.n,
        k=args.k,
        eps=args.eps,
        fault_rate=args.fault_rate if args.chaos else 0.0,
        seed=args.seed,
        backend=args.backend,
        kernel=args.kernel,
    )
    service = TesterService(ServiceConfig(tester=_config(args), workers=args.workers))
    # SIGTERM/SIGINT drain: in-flight sessions finish, the queue is shed,
    # and the final (reconciled) report below is still written.
    service.install_signal_handlers()
    for request in build_requests(chaos):
        service.submit(request)
    report = service.run()
    counts = report.counts()
    print(f"sessions  : {args.sessions} "
          f"(chaos fault rate {chaos.fault_rate:.0%})")
    if report.drained:
        print("drained   : yes (shutdown signal; queue shed, in-flight finished)")
    print(f"rounds    : {report.rounds}")
    print(f"outcomes  : " + "  ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    rate = len(report.outcomes) / report.wall_seconds if report.wall_seconds else 0.0
    print(f"throughput: {rate:.1f} sessions/s ({report.wall_seconds:.2f}s wall)")
    degraded = [o for o in report.outcomes if o.state == "DEGRADED"]
    for outcome in degraded:
        print(f"  degraded  {outcome.request_id}: {outcome.degraded_mode} "
              f"(confidence {outcome.confidence:.3g})")
    evicted = [o for o in report.outcomes if o.state == "EVICTED"]
    for outcome in evicted:
        print(f"  evicted   {outcome.request_id}: {outcome.reason}")
    if args.report:
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(args.report, report.canonical_json())
        print(f"report    : {args.report}")
    if args.trace_dir:
        import os

        os.makedirs(args.trace_dir, exist_ok=True)
        for request_id, events in sorted(service.session_traces.items()):
            write_jsonl(os.path.join(args.trace_dir, f"{request_id}.jsonl"), events)
        print(f"traces    : {args.trace_dir} "
              f"({len(service.session_traces)} session files)")
    if args.metrics:
        from repro.observability.metrics import get_metrics

        for key, value in get_metrics().snapshot().items():
            print(f"  metric    {key} = {value}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed import ChaosSchedule
    from repro.distributed.worker import WorkerOptions, worker_main

    chaos = None
    if args.chaos_rate > 0.0:
        actions = tuple(a for a in args.chaos_actions.split(",") if a.strip())
        chaos = ChaosSchedule(
            seed=args.chaos_seed,
            rate=args.chaos_rate,
            actions=actions,
            max_actions=args.chaos_max_actions,
            stall_seconds=args.chaos_stall,
        )
    options = WorkerOptions(
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
        max_shards=args.max_shards,
        kernel=args.kernel,
        workers=args.workers,
        chaos=chaos,
    )
    worker_main(args.store, options)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.distributed import ResultsStore, format_report, summarize
    from repro.distributed.report import report_json

    store = ResultsStore(args.store)
    try:
        report = summarize(store)
        if args.json:
            print(report_json(report))
        else:
            print(format_report(report))
            if args.events:
                print("audit log:")
                for event in store.events():
                    detail = f" — {event['detail']}" if event["detail"] else ""
                    print(f"  [{event['seq']:>4}] {event['kind']:<10} "
                          f"shard={str(event['shard_id'])[:12]} "
                          f"worker={event['worker_id']}{detail}")
        return 0 if report.total_drift == 0 else 1
    finally:
        store.close()


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.action == "validate":
        count = validate_trace(args.file)
        print(f"{args.file}: OK ({count} events)")
        return 0

    events = read_jsonl(args.file)
    # Aggregate per span/event name: occurrences, samples drawn, wall clock.
    agg: "OrderedDict[str, dict]" = OrderedDict()
    ledgers = []
    for event in events:
        if event["kind"] == "event" and event["name"].split("/")[-1] == "ledger":
            ledgers.append(event["attrs"])
        row = agg.setdefault(
            event["name"], {"count": 0, "samples": 0, "secs": 0.0, "timed": False}
        )
        row["count"] += 1
        samples = event["attrs"].get("samples")
        if isinstance(samples, int) and not isinstance(samples, bool):
            row["samples"] += samples
        if event["duration_s"] is not None:
            row["secs"] += event["duration_s"]
            row["timed"] = True
    rows = [
        [name, r["count"], f"{r['samples']:,}",
         f"{r['secs']:.4f}" if r["timed"] else "—"]
        for name, r in agg.items()
    ]
    print(format_table(["span", "count", "samples", "seconds"], rows))
    if ledgers:
        total = sum(led.get("total", 0) for led in ledgers)
        print(f"ledger events  : {len(ledgers)} (reconciled; {total:,} samples total)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Testing histogram distributions (Canonne, PODS'16/'23).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_test = sub.add_parser("test", help="run the k-histogram tester on a workload")
    p_test.add_argument("workload", choices=sorted(REGISTRY), help="named workload")
    _add_common(p_test)
    p_test.add_argument(
        "--stage-timings",
        action="store_true",
        default=False,
        help="also print the per-op kernel dispatch breakdown "
        "(which kernel ran each hot loop, calls, seconds)",
    )
    _add_trace(p_test)
    p_test.set_defaults(func=_cmd_test)

    p_close = sub.add_parser(
        "closeness",
        help="run the two-sample closeness tester on a paired workload",
    )
    from repro.experiments.workloads import CLOSENESS_REGISTRY

    p_close.add_argument(
        "workload", choices=sorted(CLOSENESS_REGISTRY), help="named paired workload"
    )
    p_close.add_argument("--n", type=int, default=10_000, help="domain size")
    p_close.add_argument("--k", type=int, default=8, help="histogram pieces")
    p_close.add_argument("--eps", type=float, default=0.25, help="TV proximity")
    p_close.add_argument("--seed", type=int, default=0, help="RNG seed")
    p_close.add_argument(
        "--profile",
        choices=["practical", "paper"],
        default="practical",
        help="constant profile (paper = literal worst-case constants)",
    )
    p_close.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="auto",
        help="compute kernels (execution knob only — bit-identical results)",
    )
    p_close.add_argument(
        "--stage-timings",
        action="store_true",
        default=False,
        help="also print the per-op kernel dispatch breakdown",
    )
    _add_trace(p_close)
    p_close.set_defaults(func=_cmd_closeness)

    p_select = sub.add_parser("select", help="find the smallest eps-sufficient k")
    p_select.add_argument("workload", choices=sorted(REGISTRY))
    _add_common(p_select)
    p_select.add_argument("--k-max", type=int, default=256)
    p_select.add_argument("--repeats", type=int, default=3)
    p_select.set_defaults(func=_cmd_select)

    p_budget = sub.add_parser("budget", help="print the sample-budget landscape")
    _add_common(p_budget)
    p_budget.set_defaults(func=_cmd_budget)

    p_bench = sub.add_parser(
        "bench", help="repeated-trial acceptance benchmark with worker processes"
    )
    p_bench.add_argument("workload", choices=sorted(REGISTRY), help="named workload")
    _add_common(p_bench)
    p_bench.add_argument("--trials", type=int, default=200, help="independent trials")
    _add_workers(p_bench)
    p_bench.add_argument(
        "--compare-serial",
        action="store_true",
        default=False,
        help="rerun serially, report the speedup, and verify bit-identical results",
    )
    p_bench.add_argument(
        "--stage-timings",
        action="store_true",
        default=False,
        help="also profile one in-process trial and print per-stage "
        "wall-clock timings (partition/learn/sieve/check/chi2)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_sweep = sub.add_parser(
        "sweep", help="empirical sample-complexity sweep along one axis"
    )
    p_sweep.add_argument("axis", choices=["n", "k", "eps"], help="axis to sweep")
    p_sweep.add_argument(
        "--values",
        required=True,
        help="comma-separated axis values, e.g. 1000,2000,4000",
    )
    _add_common(p_sweep)
    p_sweep.add_argument(
        "--task",
        choices=["identity", "closeness"],
        default="identity",
        help="tester under measurement: one-sample identity (Algorithm 1) "
        "or two-sample closeness (DKN17); fingerprint-bearing",
    )
    p_sweep.add_argument("--trials", type=int, default=9, help="trials per evaluation")
    p_sweep.add_argument(
        "--bisection-steps", type=int, default=5, help="budget-bisection refinements"
    )
    p_sweep.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="save progress to this JSON file after every completed point",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        default=False,
        help="continue a matching checkpoint instead of discarding it",
    )
    p_sweep.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="distributed mode: enqueue shards into this sqlite results "
        "store and drain them with supervised worker subprocesses "
        "(byte-identical to the serial run; inspect with `repro report`)",
    )
    p_sweep.add_argument(
        "--worker-procs",
        type=int,
        default=2,
        metavar="N",
        help="worker subprocesses for --store mode (1 runs in-process)",
    )
    p_sweep.add_argument(
        "--lease-seconds",
        type=float,
        default=15.0,
        help="shard lease duration for --store mode (a worker silent this "
        "long is presumed dead and its shard re-dispatched)",
    )
    _add_workers(p_sweep)
    _add_trace(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_serve = sub.add_parser(
        "serve", help="run the always-on multi-session tester service"
    )
    p_serve.add_argument(
        "--sessions", type=int, default=40, help="number of stream sessions to submit"
    )
    # Serve additionally accepts "mixed": alternate backends per session to
    # drill the same-shape, different-backend batch-grouping path.
    _add_common(p_serve, backends=tuple(BACKENDS) + ("mixed",))
    p_serve.add_argument(
        "--chaos",
        action="store_true",
        default=False,
        help="replay the deterministic fault schedule over the session population",
    )
    p_serve.add_argument(
        "--fault-rate",
        type=float,
        default=0.1,
        help="fraction of sessions carrying an injected fault (with --chaos)",
    )
    p_serve.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the canonical JSON service report to this file",
    )
    p_serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="PATH",
        help="write one JSONL trace file per session into this directory",
    )
    p_serve.add_argument(
        "--metrics",
        action="store_true",
        default=False,
        help="print the final metrics snapshot",
    )
    _add_workers(p_serve)
    # Chaos-drill defaults: n=512 keeps the full pipeline (not the plugin
    # regime) in play, so every fault kind actually fires.
    p_serve.set_defaults(func=_cmd_serve, n=512, k=4, eps=0.3)

    p_worker = sub.add_parser(
        "worker", help="run one distributed-sweep worker against a results store"
    )
    p_worker.add_argument(
        "--store", required=True, metavar="PATH", help="sqlite results store"
    )
    p_worker.add_argument(
        "--worker-id", required=True, help="unique id for this worker process"
    )
    p_worker.add_argument("--lease-seconds", type=float, default=30.0)
    p_worker.add_argument("--poll-seconds", type=float, default=0.2)
    p_worker.add_argument(
        "--max-shards", type=int, default=None,
        help="exit after committing this many shards (default: run to finish)",
    )
    p_worker.add_argument(
        "--kernel", choices=list(KERNELS), default="auto",
        help="compute kernels (execution knob — bit-identical results)",
    )
    _add_workers(p_worker)
    p_worker.add_argument("--chaos-seed", type=int, default=0)
    p_worker.add_argument(
        "--chaos-rate", type=float, default=0.0,
        help="per-claim fault-injection probability (0 disables chaos)",
    )
    p_worker.add_argument(
        "--chaos-actions",
        default="kill,late-commit,duplicate-commit,skip-heartbeat",
        help="comma-separated action pool for seeded chaos",
    )
    p_worker.add_argument("--chaos-stall", type=float, default=0.05)
    p_worker.add_argument("--chaos-max-actions", type=int, default=2)
    p_worker.set_defaults(func=_cmd_worker)

    p_report = sub.add_parser(
        "report", help="inspect a distributed-sweep results store"
    )
    p_report.add_argument(
        "--store", required=True, metavar="PATH", help="sqlite results store"
    )
    p_report.add_argument(
        "--json", action="store_true", default=False,
        help="emit the full report as JSON instead of text",
    )
    p_report.add_argument(
        "--events", action="store_true", default=False,
        help="also print the complete audit log",
    )
    p_report.set_defaults(func=_cmd_report)

    p_trace = sub.add_parser("trace", help="inspect a JSONL trace file")
    p_trace.add_argument(
        "action",
        choices=["summarize", "validate"],
        help="summarize: per-span aggregates; validate: schema + seq check",
    )
    p_trace.add_argument("file", help="trace file written by --trace")
    p_trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
