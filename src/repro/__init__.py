"""histtest — testing histogram distributions.

A production-quality reproduction of Clément L. Canonne's
*"Are Few Bins Enough: Testing Histogram Distributions"* (PODS 2016;
corrigendum PODS 2023): given sample access to an unknown distribution over
``{0, …, n-1}``, decide whether it is a *k-histogram* (piecewise-constant on
at most ``k`` contiguous intervals) or ε-far in total variation from every
k-histogram.

Quickstart::

    import numpy as np
    from repro import families, test_histogram

    hist = families.staircase(n=5000, k=8)
    verdict = test_histogram(hist.to_distribution(), k=8, eps=0.25, rng=0)
    assert verdict.accept

Top-level re-exports cover the common surface; sub-packages hold the rest:

* :mod:`repro.core` — Algorithm 1 and its stages (Theorem 3.1);
* :mod:`repro.distributions` — pmfs, histograms, distances, projections;
* :mod:`repro.baselines` — prior-work testers ([ILR12], [CDGR16], …);
* :mod:`repro.learning` — agnostic histogram learning & model selection;
* :mod:`repro.lowerbounds` — the Section 4 constructions (Theorem 1.2);
* :mod:`repro.experiments` — the evaluation harness behind benchmarks/;
* :mod:`repro.robustness` — fault injection, retry/deadline isolation, and
  checkpoint/resume for fault-tolerant experiment execution;
* :mod:`repro.observability` — hierarchical span tracing (deterministic
  JSONL), a metrics registry, and the integer-exact sample ledger.
"""

from repro.audit import audit_histogram, recommend_buckets
from repro.core.config import TesterConfig
from repro.core.closeness import ClosenessTester, ClosenessVerdict, test_closeness
from repro.core.tester import HistogramTester, Verdict, test_histogram
from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram, is_k_histogram
from repro.distributions.replay import ReplaySource
from repro.distributions.sampling import (
    PairedSampleSource,
    SampleBudgetExceeded,
    SampleSource,
)
from repro.observability import NULL_TRACER, RecordingTracer, get_metrics
from repro.robustness import FaultConfig, FaultInjectingSource

__version__ = "1.0.0"

__all__ = [
    "ClosenessTester",
    "ClosenessVerdict",
    "DiscreteDistribution",
    "FaultConfig",
    "FaultInjectingSource",
    "Histogram",
    "HistogramTester",
    "NULL_TRACER",
    "PairedSampleSource",
    "RecordingTracer",
    "ReplaySource",
    "SampleBudgetExceeded",
    "SampleSource",
    "TesterConfig",
    "Verdict",
    "__version__",
    "audit_histogram",
    "families",
    "get_metrics",
    "is_k_histogram",
    "recommend_buckets",
    "test_closeness",
    "test_histogram",
]
