"""High-level dataset auditing — the adoption-facing API.

The library's testers speak the property-testing dialect (oracles, ε, H_k);
a practitioner has a column of values and two questions:

* "is a k-bucket histogram a faithful summary of this column?"
* "how many buckets does this column actually need?"

This module answers both over a concrete dataset (any integer array),
handling the budget arithmetic, the dataset-size check, and the
select-then-learn pipeline.  All statistical caveats of
:class:`~repro.distributions.replay.ReplaySource` apply (rows assumed
i.i.d.; data is consumed, not recycled, within one answer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.budget import algorithm1_budget
from repro.core.config import TesterConfig
from repro.core.tester import Verdict, test_histogram
from repro.distributions.histogram import Histogram
from repro.distributions.replay import InsufficientSamples, ReplaySource
from repro.learning.merge import histogram_from_counts
from repro.util.rng import RandomState


@dataclass(frozen=True)
class AuditReport:
    """Outcome of a dataset histogram audit."""

    verdict: Verdict
    n: int
    k: int
    eps: float
    dataset_size: int
    observations_used: float
    summary: Histogram | None  # learned only when the audit accepts

    @property
    def histogram_ok(self) -> bool:
        """True when a k-bucket summary is certified faithful."""
        return self.verdict.accept


def required_dataset_size(
    n: int, k: int, eps: float, config: TesterConfig | None = None
) -> int:
    """Observations needed (worst case) to audit at these parameters.

    A thin wrapper over :func:`repro.core.budget.algorithm1_budget` plus
    the learning stage run on acceptance.
    """
    if config is None:
        config = TesterConfig.practical()
    from repro.learning.merge import merge_learner_samples

    return int(np.ceil(algorithm1_budget(n, k, eps, config) + merge_learner_samples(k, eps)))


def audit_histogram(
    observations: np.ndarray,
    k: int,
    eps: float = 0.25,
    *,
    n: int | None = None,
    config: TesterConfig | None = None,
    learn_on_accept: bool = True,
    rng: RandomState = None,
) -> AuditReport:
    """Audit whether a k-bucket histogram faithfully summarises a column.

    Parameters
    ----------
    observations:
        Integer column values in ``{0, …, n-1}`` (rows assumed i.i.d.).
    k, eps:
        Summary size and acceptable total-variation error.
    learn_on_accept:
        When the audit accepts, also fit the k-bucket summary from the
        remaining observations (skipped, with a ``None`` summary, if the
        dataset runs out).

    Raises
    ------
    InsufficientSamples
        If the dataset cannot cover the tester's budget; the exception
        message includes how to size the dataset
        (:func:`required_dataset_size`).
    """
    if config is None:
        config = TesterConfig.practical()
    source = ReplaySource(observations, n, rng=rng)
    verdict = test_histogram(source, k, eps, config=config)

    summary = None
    if verdict.accept and learn_on_accept:
        from repro.learning.merge import merge_learner_samples

        want = merge_learner_samples(k, eps)
        take = min(want, source.remaining)
        if take > 0:
            counts = source.draw_counts(take)
            summary = histogram_from_counts(counts, k, eps)
    return AuditReport(
        verdict=verdict,
        n=source.n,
        k=k,
        eps=eps,
        dataset_size=len(np.asarray(observations)),
        observations_used=source.samples_drawn,
        summary=summary,
    )


def recommendation_dataset_size(
    n: int,
    k_max: int,
    eps: float,
    *,
    config: TesterConfig | None = None,
    repeats: int = 3,
) -> int:
    """Observations needed (worst case) for :func:`recommend_buckets`:
    a doubling + binary search makes ``O(log k_max)`` amplified tester
    calls, each at most the ``k_max`` budget."""
    if config is None:
        config = TesterConfig.practical()
    calls = 2 * (max(2, k_max).bit_length() + 1)
    per_call = algorithm1_budget(n, k_max, eps, config)
    from repro.learning.merge import merge_learner_samples

    return int(np.ceil(repeats * calls * per_call + merge_learner_samples(k_max, eps)))


@dataclass(frozen=True)
class BucketRecommendation:
    """Outcome of the bucket-count recommendation."""

    k: int
    summary: Histogram
    eps: float
    observations_used: float
    trace: dict


def recommend_buckets(
    observations: np.ndarray,
    eps: float = 0.25,
    *,
    n: int | None = None,
    k_max: int = 256,
    config: TesterConfig | None = None,
    repeats: int = 3,
    rng: RandomState = None,
) -> BucketRecommendation:
    """The §1.1 pipeline over a dataset: smallest ε-sufficient bucket count
    by doubling search, then the fitted summary at that count."""
    from repro.learning.model_selection import select_k

    if config is None:
        config = TesterConfig.practical()
    source = ReplaySource(observations, n, rng=rng)
    try:
        result = select_k(source, eps, k_max=k_max, config=config, repeats=repeats)
    except InsufficientSamples as exc:
        hint = recommendation_dataset_size(source.n, k_max, eps, config=config, repeats=repeats)
        raise InsufficientSamples(hint, exc.remaining) from exc
    return BucketRecommendation(
        k=result.k,
        summary=result.histogram,
        eps=eps,
        observations_used=source.samples_drawn,
        trace=result.accepted_trace,
    )


__all__ = [
    "AuditReport",
    "BucketRecommendation",
    "InsufficientSamples",
    "audit_histogram",
    "recommend_buckets",
    "recommendation_dataset_size",
    "required_dataset_size",
]
