"""Kernel selection state: which implementation family executes hot loops.

``kernel`` is an *execution* knob, exactly like ``engine``: it selects how
an array computation runs, never what it computes.  Three spellings:

* ``"python"`` — the canonical pure-numpy implementations
  (:mod:`repro.kernels.pykernels`).  Always present, always the reference.
* ``"numba"``  — JIT-compiled variants (:mod:`repro.kernels.native`),
  available only when the build-optional ``repro[native]`` extra is
  installed.  Bit-identical to the python kernels by construction: every
  native loop performs the same floating-point operations in the same
  order as its numpy counterpart.
* ``"auto"``   — resolve to ``"numba"`` when importable, else ``"python"``.

Resolution rules (documented in DESIGN.md § "Kernel layer"):

* ``kernel="auto"`` silently falls back to python when numba is absent —
  the pure-numpy path is canonical, so "best available" is always safe;
* an **explicit** ``kernel="numba"`` without numba raises
  :class:`KernelUnavailableError` — a caller who pinned the native kernel
  (e.g. a benchmark measuring it) must not silently measure the wrong one;
* individual ops with no native registration fall back to their python
  implementation even under ``kernel="numba"`` (see
  :func:`repro.kernels.dispatch.dispatch`) — partial native coverage is
  expected, not an error.

The *current* kernel is thread-local (set with :func:`use_kernel` or the
``REPRO_KERNEL`` environment variable) so layered code — the tester
pipeline wrapping a projection oracle wrapping a rank tree — needs no
parameter plumbing through every call, and concurrent serve sessions with
different requested kernels cannot race each other's setting.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

#: Accepted spellings of the knob, mirroring ``projection._ENGINES``.
KERNELS = ("auto", "python", "numba")

#: Environment override consumed when no thread-local kernel is active
#: (benchmark / CI passthrough, mirroring ``REPRO_WORKERS``/``REPRO_BACKEND``).
KERNEL_ENV_VAR = "REPRO_KERNEL"

_local = threading.local()

_native_probe: "bool | None" = None


class KernelUnavailableError(RuntimeError):
    """An explicitly requested kernel implementation is not installed."""


def validate_kernel(kernel: str) -> str:
    """Check the spelling (not availability); returns ``kernel`` unchanged."""
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    return kernel


def native_available() -> bool:
    """True when the numba kernels import cleanly (probed once, cached).

    Importing :mod:`repro.kernels.native` also registers every native op,
    so a successful probe leaves the dispatch table fully populated.
    """
    global _native_probe
    if _native_probe is None:
        try:
            import repro.kernels.native  # noqa: F401  (registers ops on import)

            _native_probe = True
        except ImportError:
            _native_probe = False
    return _native_probe


def available_kernels() -> tuple[str, ...]:
    """Concrete kernels runnable in this environment (never ``"auto"``)."""
    return ("python", "numba") if native_available() else ("python",)


def current_kernel() -> str:
    """The active *requested* kernel: thread-local > ``REPRO_KERNEL`` > auto.

    A thread-local ``"auto"`` carries no opinion — it defers to the
    environment override, so ``REPRO_KERNEL=python`` reaches code running
    under a default ``use_kernel("auto")`` scope (the common pipeline path)
    while an explicit ``use_kernel("python"/"numba")`` still pins.
    """
    kernel = getattr(_local, "kernel", None)
    if kernel is not None and kernel != "auto":
        return kernel
    env = os.environ.get(KERNEL_ENV_VAR, "").strip()
    if env:
        return validate_kernel(env)
    return "auto"


def resolve_kernel(kernel: "str | None" = None) -> str:
    """Resolve a requested kernel to a concrete one (``python``/``numba``).

    ``None`` means "whatever is current" (thread-local or environment).
    """
    if kernel is None:
        kernel = current_kernel()
    validate_kernel(kernel)
    if kernel == "auto":
        return "numba" if native_available() else "python"
    if kernel == "numba" and not native_available():
        raise KernelUnavailableError(
            "kernel='numba' requested but numba is not installed; "
            "install the repro[native] extra or use kernel='auto'"
        )
    return kernel


@contextmanager
def use_kernel(kernel: "str | None") -> Iterator[str]:
    """Make ``kernel`` the thread's current kernel inside the block.

    ``None`` is a no-op passthrough (keeps call sites branch-free).  Yields
    the requested kernel for convenience.
    """
    if kernel is None:
        yield current_kernel()
        return
    validate_kernel(kernel)
    previous = getattr(_local, "kernel", None)
    _local.kernel = kernel
    try:
        yield kernel
    finally:
        _local.kernel = previous
