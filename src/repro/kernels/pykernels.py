"""Canonical pure-numpy implementations of every registered kernel op.

These are the reference semantics: the native (numba) kernels in
:mod:`repro.kernels.native` must reproduce them **bit-identically** — same
floating-point operations, same accumulation order — which the
``tests/kernels`` equivalence suite asserts.  The ops:

* ``rank_tree.build`` / ``rank_tree.prefix_stats`` /
  ``rank_tree.interval_stats`` — the Fenwick-block rank tree of the
  projection engine, stored as *flat* arrays: all levels' sorted keys live
  in one int64 array, offset per level by ``key_span`` so the whole array
  is globally sorted and a batched query across every level of every query
  is **one** ``searchsorted`` (the python kernel's big win over the
  historical per-level loop — ~11 searchsorted calls and mask scans per
  batch collapse into one).  The interval form decomposes ``[a, b)`` by
  its canonical segment-tree cover — fewer needles than differencing two
  prefix queries, which is what the oracle's batch objectives use.
* ``blocks.build`` — per-level aligned-block optimal-ℓ1 tables built into
  preallocated flat/2-D arrays (no per-level ``concatenate`` copies).
* ``blocks.cover_walk`` — the canonical segment-tree cover lower bound,
  evaluated per level from the closed-form walk cursors in cache-resident
  query chunks.
* ``dp.segment_first_min`` — per-segment (min, first-argmin) used by the
  D&C DP's candidate evaluation.
* ``chi2.point_terms`` — the broadcastable χ² point-term kernel.
* ``serve.aggregate_rows`` — per-partition segment sums over a
  ``(repeats, n)`` count/term matrix (``np.add.reduceat`` semantics:
  strictly sequential in-segment accumulation).
* ``sampling.counts_from_samples`` — batched sample→histogram counting.

Accumulation-order contract (what makes kernels interchangeable): for each
query, per-level contributions are added in ascending level order (interval
covers: left edge before right within a level); in-segment sums accumulate
left to right (``reduceat`` is sequential, not pairwise); ties in
``segment_first_min`` resolve to the smallest index.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.dispatch import register

#: Query-batch cap for the fused rank-tree kernels: bounds the transient
#: (pairs × few int64/float64 arrays) working set so peak memory stays
#: O(chunk · log n) regardless of how large a batch the DP throws at it —
#: and, more importantly on large DPs, keeps every per-pass intermediate
#: L2/L3-resident (measured ~25% end-to-end on the E22 n=2048 grid vs a
#: 128k chunk, whose ~20 MB working set thrashes the cache between the
#: ~10 vectorized passes; 16k measured best among 16k/32k/64k).  Chunks
#: are independent queries, so splitting never changes a result.
_QUERY_CHUNK = 1 << 14


class RankTreeData:
    """Flat-array form of the Fenwick-block rank tree.

    Level ``b`` (for ``b`` with ``n >> b >= 1``) covers the first
    ``(n >> b) << b`` positions in aligned ``2^b`` blocks; each block's
    elements are sorted by global value rank.  ``keys`` holds every level's
    sort keys (``rank + block·stride + level·key_span``) back to back —
    globally sorted because ``key_span`` exceeds any within-level key —
    with one *sentinel* (``level·key_span − 1``, below every real key of
    its level, above every key of the previous one) leading each level so
    ``keys`` aligns index-for-index with ``cw``/``cwv``, the per-level
    running masked weight / weight·value sums (one leading zero per
    level): a global ``searchsorted`` hit minus one **is** the cumulative
    index, no per-level offset bookkeeping.  Plain arrays only, so both
    the numpy and the numba query kernels consume the same object.
    """

    __slots__ = (
        "unique_vals",
        "stride",
        "nlevels",
        "key_span",
        "keys",
        "cw",
        "cwv",
        "cw_off",
    )

    def __init__(
        self,
        unique_vals: np.ndarray,
        stride: int,
        nlevels: int,
        key_span: int,
        keys: np.ndarray,
        cw: np.ndarray,
        cwv: np.ndarray,
        cw_off: np.ndarray,
    ) -> None:
        self.unique_vals = unique_vals
        self.stride = stride
        self.nlevels = nlevels
        self.key_span = key_span
        self.keys = keys
        self.cw = cw
        self.cwv = cwv
        self.cw_off = cw_off


@register("rank_tree.build", "python")
def build_rank_tree(values: np.ndarray, wm: np.ndarray, wvm: np.ndarray) -> RankTreeData:
    """Build the flat rank tree (shared by every query kernel).

    Construction is numpy argsorts and cumsums — already vectorized — so
    only the python implementation exists; ``kernel="numba"`` falls back
    here by design.
    """
    n = len(values)
    unique_vals = np.unique(values)
    stride = int(len(unique_vals) + 1)
    ranks = np.searchsorted(unique_vals, values).astype(np.int64)
    nlevels = 0
    while (n >> nlevels) >= 1:
        nlevels += 1
    level_counts = np.array([(n >> b) << b for b in range(nlevels)], dtype=np.int64)
    cw_off = np.concatenate(([0], np.cumsum(level_counts + 1))).astype(np.int64)
    key_span = (n + 1) * stride
    keys = np.empty(int(cw_off[-1]), dtype=np.int64)
    cw = np.empty(int(cw_off[-1]), dtype=np.float64)
    cwv = np.empty(int(cw_off[-1]), dtype=np.float64)
    for b in range(nlevels):
        nblocks = n >> b
        covered = nblocks << b
        resh = ranks[:covered].reshape(nblocks, 1 << b)
        order = np.argsort(resh, axis=1, kind="stable")
        block_base = (np.arange(nblocks, dtype=np.int64) << b)[:, None]
        flat = (order + block_base).ravel()
        level_keys = (
            np.take_along_axis(resh, order, axis=1)
            + np.arange(nblocks, dtype=np.int64)[:, None] * stride
        ).ravel()
        s = int(cw_off[b])
        keys[s] = b * key_span - 1  # sentinel aligning keys with cw/cwv
        keys[s + 1 : s + 1 + covered] = level_keys + b * key_span
        cw[s] = 0.0
        cwv[s] = 0.0
        np.cumsum(wm[flat], out=cw[s + 1 : s + 1 + covered])
        np.cumsum(wvm[flat], out=cwv[s + 1 : s + 1 + covered])
    return RankTreeData(unique_vals, stride, nlevels, key_span, keys, cw, cwv, cw_off)


@register("rank_tree.prefix_stats", "python")
def rank_prefix_stats(
    tree: RankTreeData, x: np.ndarray, L: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Masked (weight, weight·value) totals over positions ``< x_q`` with
    value rank ``< L_q``, for every query ``q`` — the fused form.

    Each query decomposes into the blocks named by the set bits of ``x``;
    all (query, level) pairs are gathered level-major (contiguous needles
    per level keep the binary searches cache-local), keyed into the
    globally sorted (sentinel-padded) flat ``keys`` array, resolved with
    **one** ``searchsorted``, and accumulated per query with ``bincount``
    — whose element-order accumulation makes each query's per-level adds
    ascending in level, matching the historical per-level loop bit for
    bit (the interleaving of *other* queries between them cannot affect a
    query's own sum).
    """
    x = np.asarray(x, dtype=np.int64)
    L = np.asarray(L, dtype=np.int64)
    q = len(x)
    if q == 0 or tree.nlevels == 0:
        return np.zeros(q, dtype=np.float64), np.zeros(q, dtype=np.float64)
    if q > _QUERY_CHUNK:
        w = np.empty(q, dtype=np.float64)
        wv = np.empty(q, dtype=np.float64)
        for s in range(0, q, _QUERY_CHUNK):
            ws, wvs = rank_prefix_stats(tree, x[s : s + _QUERY_CHUNK], L[s : s + _QUERY_CHUNK])
            w[s : s + _QUERY_CHUNK] = ws
            wv[s : s + _QUERY_CHUNK] = wvs
        return w, wv
    qi_parts: list[np.ndarray] = []
    key_parts: list[np.ndarray] = []
    lo_parts: list[np.ndarray] = []
    for b in range(tree.nlevels):
        idx = np.flatnonzero((x >> b) & 1)
        if idx.size == 0:
            continue
        blk = (x[idx] >> b) - 1
        qi_parts.append(idx)
        key_parts.append(blk * tree.stride + L[idx] + b * tree.key_span)
        lo_parts.append(tree.cw_off[b] + (blk << b))
    if not qi_parts:
        return np.zeros(q, dtype=np.float64), np.zeros(q, dtype=np.float64)
    qi = np.concatenate(qi_parts)
    keyq = np.concatenate(key_parts)
    lo = np.concatenate(lo_parts)
    pos = np.searchsorted(tree.keys, keyq, side="left") - 1
    w = np.bincount(qi, weights=tree.cw[pos] - tree.cw[lo], minlength=q)
    wv = np.bincount(qi, weights=tree.cwv[pos] - tree.cwv[lo], minlength=q)
    return w, wv


@register("rank_tree.interval_stats", "python")
def rank_interval_stats(
    tree: RankTreeData, a: np.ndarray, b: np.ndarray, L: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Masked (weight, weight·value) totals over positions in ``[a_q, b_q)``
    with value rank ``< L_q`` — the fused *interval* form.

    Decomposes each interval into its canonical segment-tree cover (at most
    two blocks per level) instead of differencing two prefix queries — on
    DP candidate batches that is ~25% fewer (query, block) needles than
    ``popcount(a) + popcount(b)`` and half the per-query bookkeeping.  The
    cover has a closed form — the left cursor at level ``lev`` is
    ``ceil(a / 2^lev)``, the right ``b >> lev``, independent of each other —
    so every level reads straight from ``a``/``b`` with no loop-carried
    state.  Resolution as in :func:`rank_prefix_stats`: one global
    ``searchsorted`` into the sentinel-padded flat keys, then ``bincount``
    accumulation per query in the canonical cover order (level ascending,
    left edge before right — the order :func:`cover_walk` pins).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    L = np.asarray(L, dtype=np.int64)
    q = len(a)
    if q == 0 or tree.nlevels == 0:
        return np.zeros(q, dtype=np.float64), np.zeros(q, dtype=np.float64)
    if q > _QUERY_CHUNK:
        w = np.empty(q, dtype=np.float64)
        wv = np.empty(q, dtype=np.float64)
        for s in range(0, q, _QUERY_CHUNK):
            ws, wvs = rank_interval_stats(
                tree,
                a[s : s + _QUERY_CHUNK],
                b[s : s + _QUERY_CHUNK],
                L[s : s + _QUERY_CHUNK],
            )
            w[s : s + _QUERY_CHUNK] = ws
            wv[s : s + _QUERY_CHUNK] = wvs
        return w, wv
    # The walk state has a closed form — at level ``lev`` the left cursor
    # is ``ceil(a / 2^lev)`` and the right ``b >> lev`` — so every level
    # reads straight from ``a``/``b`` with no loop-carried updates.
    qi_parts: list[np.ndarray] = []
    key_parts: list[np.ndarray] = []
    lo_parts: list[np.ndarray] = []
    for lev in range(tree.nlevels):
        lj = -((-a) >> lev)  # ceil(a / 2^lev); a >= 0
        rj = b >> lev
        live = lj < rj
        if not live.any():
            break
        # Canonical order within a level: left edge, then right edge.
        for cand, odd in ((lj, live & ((lj & 1) == 1)), (rj - 1, live & ((rj & 1) == 1))):
            qi = np.flatnonzero(odd)
            if qi.size == 0:
                continue
            blk = cand[qi]
            qi_parts.append(qi)
            key_parts.append(blk * tree.stride + L[qi] + lev * tree.key_span)
            lo_parts.append(tree.cw_off[lev] + (blk << lev))
    if not qi_parts:
        return np.zeros(q, dtype=np.float64), np.zeros(q, dtype=np.float64)
    qi = np.concatenate(qi_parts)
    keyq = np.concatenate(key_parts)
    lo = np.concatenate(lo_parts)
    pos = np.searchsorted(tree.keys, keyq, side="left") - 1
    w = np.bincount(qi, weights=tree.cw[pos] - tree.cw[lo], minlength=q)
    wv = np.bincount(qi, weights=tree.cwv[pos] - tree.cwv[lo], minlength=q)
    return w, wv


@register("blocks.build", "python")
def build_block_tables(
    v: np.ndarray, wm: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Aligned-block optimal masked-ℓ1 cost tables for every level.

    Returns ``(costs_flat, costs_off, prefix2d, nlevels)``: level ``b``'s
    per-block costs live at ``costs_flat[costs_off[b]:costs_off[b+1]]``
    and ``prefix2d[b, :nblocks_b + 1]`` holds their prefix sums (rows are
    zero-padded to a common width so a per-pair, length-adaptive level can
    be gathered in one fancy-index).  All output — and the shared pad
    buffer — is preallocated once; no per-level ``concatenate`` copies.
    """
    n = len(v)
    nlevels = 0
    while (n >> nlevels) >= 1:
        nlevels += 1
    counts = np.array([-(n // -(1 << b)) for b in range(nlevels)], dtype=np.int64)
    costs_off = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    costs_flat = np.empty(int(costs_off[-1]), dtype=np.float64)
    prefix2d = np.zeros((nlevels, n + 1), dtype=np.float64)
    if nlevels == 0:
        return costs_flat, costs_off, prefix2d, nlevels
    # One shared zero-padded buffer: the largest padded level is < 2n, and
    # nothing ever writes past n, so the pad stays zero across levels.
    vp = np.zeros(2 * n, dtype=np.float64)
    wp = np.zeros(2 * n, dtype=np.float64)
    vp[:n] = v
    wp[:n] = wm
    for b in range(nlevels):
        size = 1 << b
        nblocks = int(counts[b])
        padded = nblocks * size
        sv_blocks = vp[:padded].reshape(nblocks, size)
        sw_blocks = wp[:padded].reshape(nblocks, size)
        order = np.argsort(sv_blocks, axis=1, kind="stable")
        sv = np.take_along_axis(sv_blocks, order, axis=1)
        sw = np.take_along_axis(sw_blocks, order, axis=1)
        cumw = np.cumsum(sw, axis=1)
        cumwv = np.cumsum(sw * sv, axis=1)
        tot = cumw[:, -1]
        totv = cumwv[:, -1]
        rows = np.arange(nblocks)
        pos = (cumw >= 0.5 * tot[:, None]).argmax(axis=1)
        c = sv[rows, pos]
        w_lt = np.where(pos > 0, cumw[rows, pos - 1], 0.0)
        wv_lt = np.where(pos > 0, cumwv[rows, pos - 1], 0.0)
        below = c * w_lt - wv_lt
        above = (totv - wv_lt) - c * (tot - w_lt)
        costs = np.maximum(below, 0.0) + np.maximum(above, 0.0)
        costs_flat[costs_off[b] : costs_off[b + 1]] = costs
        np.cumsum(costs, out=prefix2d[b, 1 : nblocks + 1])
    return costs_flat, costs_off, prefix2d, nlevels


@register("blocks.cover_walk", "python")
def cover_walk(
    costs_flat: np.ndarray,
    costs_off: np.ndarray,
    nlevels: int,
    a: np.ndarray,
    b: np.ndarray,
) -> np.ndarray:
    """Canonical segment-tree cover cost sum of every ``[a_q, b_q)``.

    Same closed-form cursors as :func:`rank_interval_stats` (left
    ``ceil(a / 2^lev)``, right ``b >> lev``), chunked to keep the per-level
    intermediates cache-resident.  Per pair, contributions are added in the
    canonical order — level ascending, left edge before right — so the
    result is bit-identical to the scalar walk.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    q = len(a)
    out = np.zeros(q, dtype=np.float64)
    if q == 0 or nlevels == 0:
        return out
    if q > _QUERY_CHUNK:
        for s in range(0, q, _QUERY_CHUNK):
            out[s : s + _QUERY_CHUNK] = cover_walk(
                costs_flat, costs_off, nlevels, a[s : s + _QUERY_CHUNK], b[s : s + _QUERY_CHUNK]
            )
        return out
    for lev in range(nlevels):
        lj = -((-a) >> lev)  # ceil(a / 2^lev); a >= 0
        rj = b >> lev
        live = lj < rj
        if not live.any():
            break
        base = int(costs_off[lev])
        qi = np.flatnonzero(live & ((lj & 1) == 1))
        if qi.size:
            out[qi] += costs_flat[base + lj[qi]]
        qi = np.flatnonzero(live & ((rj & 1) == 1))
        if qi.size:
            out[qi] += costs_flat[base + rj[qi] - 1]
    return out


@register("dp.segment_first_min", "python")
def segment_first_min(
    vals: np.ndarray, starts: np.ndarray, i_arr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment minimum value and the smallest ``i`` attaining it
    (matching the dense ``np.argmin`` first-minimum convention; ``i_arr``
    need not be sorted within a segment)."""
    mins = np.minimum.reduceat(vals, starts)
    sizes = np.diff(np.append(starts, len(vals)))
    rep = np.repeat(mins, sizes)
    cand = np.where(vals == rep, i_arr, np.iinfo(np.int64).max)
    argi = np.minimum.reduceat(cand, starts)
    return mins, argi


@register("chi2.point_terms", "python")
def chi2_point_terms(
    counts: np.ndarray,
    m: "float | np.ndarray",
    reference_pmf: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Point-level χ² terms ``((N − m·D*)² − N) / (m·D*)``, broadcastable
    over stacked ``(streams, repeats, n)`` batches; zero where masked out
    or the expectation vanishes."""
    counts = np.asarray(counts, dtype=np.float64)
    expected = m * reference_pmf
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        terms = ((counts - expected) ** 2 - counts) / expected
    return np.where(mask & (expected > 0), terms, 0.0)


@register("chi2.paired_point_terms", "python")
def chi2_paired_point_terms(
    counts_x: np.ndarray,
    counts_y: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Paired closeness terms ``((X − Y)² − X − Y) / (X + Y)``, broadcastable
    over stacked ``(repeats, B)`` batches; zero where masked out or the
    pair total vanishes.  Under ``p = q`` every term has mean exactly zero
    (conditionally on ``X + Y``, ``X`` is ``Binomial(X+Y, 1/2)``)."""
    counts_x = np.asarray(counts_x, dtype=np.float64)
    counts_y = np.asarray(counts_y, dtype=np.float64)
    total = counts_x + counts_y
    diff = counts_x - counts_y
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        terms = (diff * diff - total) / total
    return np.where(mask & (total > 0), terms, 0.0)


@register("serve.aggregate_rows", "python")
def aggregate_rows(terms: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Segment sums of every row of a ``(repeats, n)`` matrix at once.

    ``starts`` are the partition's interval start positions (strictly
    increasing, first = 0); row ``r``'s output equals
    ``np.add.reduceat(terms[r], starts)`` exactly — ``reduceat`` sums each
    segment sequentially, per row, so stacking rows changes nothing.
    """
    terms = np.asarray(terms, dtype=np.float64)
    return np.add.reduceat(terms, np.asarray(starts, dtype=np.int64), axis=-1)


@register("sampling.counts_from_samples", "python")
def counts_from_samples(samples: np.ndarray, n: int) -> np.ndarray:
    """Histogram counts of integer samples over ``{0, …, n-1}`` (exact
    integer counting — trivially identical across kernels)."""
    return np.bincount(samples, minlength=n).astype(np.int64)
