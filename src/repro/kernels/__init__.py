"""Dispatchable hot-path kernels: pure-numpy reference + optional numba JIT.

``kernel`` is a fingerprint-safe execution knob (like ``engine``, unlike
``backend``): it selects *how* array loops run, never what they compute —
both implementations of every op are bit-identical by construction and by
test.  See DESIGN.md § "Kernel layer".

Importing this package registers the pure-python kernels; the native
(numba) set registers lazily the first time availability is probed.
"""

from repro.kernels.dispatch import (
    DispatchedKernel,
    dispatch,
    kernel_seconds_snapshot,
    kernels_for,
    register,
    registered_ops,
)
from repro.kernels.state import (
    KERNEL_ENV_VAR,
    KERNELS,
    KernelUnavailableError,
    available_kernels,
    current_kernel,
    native_available,
    resolve_kernel,
    use_kernel,
    validate_kernel,
)

import repro.kernels.pykernels  # noqa: E402,F401  (registers python ops)

__all__ = [
    "KERNELS",
    "KERNEL_ENV_VAR",
    "KernelUnavailableError",
    "DispatchedKernel",
    "available_kernels",
    "current_kernel",
    "dispatch",
    "kernel_seconds_snapshot",
    "kernels_for",
    "native_available",
    "register",
    "registered_ops",
    "resolve_kernel",
    "use_kernel",
    "validate_kernel",
]
