"""The kernel op registry: named hot-path operations, dispatched by kernel.

Every hot kernel is registered under a stable op name (``"rank_tree.
prefix_stats"``, ``"blocks.cover_walk"``, …) with one implementation per
kernel family.  :func:`dispatch` resolves the requested kernel, picks the
implementation (falling back to the canonical python one when an op has no
native registration), and returns a thin callable that meters every call
into the metrics registry:

    ``kernels.seconds{op=…, kernel=…}`` — a distribution whose ``count`` is
    the number of dispatched calls and whose ``sum`` is the wall-clock
    seconds spent inside them.

Callers on a hot path resolve once and reuse the returned callable (the
projection oracle binds its kernels at construction); one-shot callers just
dispatch inline — a dispatch is two dict lookups plus one instrument fetch.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.kernels.state import resolve_kernel

_REGISTRY: "dict[str, dict[str, Callable[..., Any]]]" = {}


def register(op: str, kernel: str) -> Callable[[Callable], Callable]:
    """Class-of-2 decorator: register ``fn`` as ``op``'s ``kernel`` impl."""

    def decorate(fn: Callable) -> Callable:
        _REGISTRY.setdefault(op, {})[kernel] = fn
        return fn

    return decorate


def registered_ops() -> tuple[str, ...]:
    """Sorted op names currently registered (diagnostics / tests)."""
    return tuple(sorted(_REGISTRY))


def kernels_for(op: str) -> tuple[str, ...]:
    """Sorted kernel names registered for one op."""
    return tuple(sorted(_REGISTRY.get(op, ())))


class DispatchedKernel:
    """One resolved (op, kernel) pair, metered per call.

    ``kernel`` is the implementation actually bound — a native-less op under
    ``kernel="numba"`` reports ``"python"`` here, which is exactly what the
    per-kernel timing table should show.
    """

    __slots__ = ("op", "kernel", "_fn", "_metric")

    def __init__(self, op: str, kernel: str, fn: Callable[..., Any]) -> None:
        from repro.observability.metrics import get_metrics

        self.op = op
        self.kernel = kernel
        self._fn = fn
        self._metric = get_metrics().distribution("kernels.seconds", op=op, kernel=kernel)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        tick = time.perf_counter()
        try:
            return self._fn(*args, **kwargs)
        finally:
            self._metric.observe(time.perf_counter() - tick)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DispatchedKernel(op={self.op!r}, kernel={self.kernel!r})"


def dispatch(op: str, kernel: "str | None" = None) -> DispatchedKernel:
    """Resolve ``op`` under the requested kernel; returns a metered callable.

    Raises ``KeyError`` for unknown ops and
    :class:`~repro.kernels.state.KernelUnavailableError` when ``"numba"``
    is requested explicitly without the native extra.  An op with no
    implementation for the resolved kernel falls back to its python one.
    """
    impls = _REGISTRY.get(op)
    if impls is None:
        raise KeyError(f"unknown kernel op {op!r}; registered: {registered_ops()}")
    resolved = resolve_kernel(kernel)
    fn = impls.get(resolved)
    if fn is None:
        resolved = "python"
        fn = impls[resolved]
    return DispatchedKernel(op, resolved, fn)


def kernel_seconds_snapshot() -> "list[tuple[str, str, int, float]]":
    """Rows ``(op, kernel, calls, seconds)`` from the metrics registry.

    Sourced from the process-wide ``kernels.seconds`` distributions — the
    data behind ``repro test --stage-timings``'s per-kernel breakdown.
    """
    from repro.observability.metrics import Distribution, get_metrics

    rows = []
    for inst in get_metrics():
        if isinstance(inst, Distribution) and inst.name == "kernels.seconds":
            rows.append(
                (
                    str(inst.labels.get("op", "?")),
                    str(inst.labels.get("kernel", "?")),
                    int(inst.count),
                    float(inst.total),
                )
            )
    rows.sort(key=lambda row: (-row[3], row[0], row[1]))
    return rows
