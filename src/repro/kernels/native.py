"""JIT-compiled (numba) kernel implementations — the ``repro[native]`` extra.

This module is import-gated: ``import repro.kernels.native`` raises
``ImportError`` when numba is not installed, and
:func:`repro.kernels.state.native_available` treats that as "native kernels
absent".  Nothing else in the package imports this module unconditionally.

Every kernel here is a *bit-identical* mirror of its pure-numpy reference in
:mod:`repro.kernels.pykernels`: the jitted loops perform the same
floating-point operations in the same order —

* rank-tree queries add per-level contributions in ascending level order
  with a scalar accumulator, exactly like the python kernel's ``bincount``
  (which accumulates its level-major input element by element; interval
  covers add the left edge before the right within a level);
* segment sums run strictly left to right, matching ``np.add.reduceat``'s
  sequential (non-pairwise) in-segment accumulation;
* the χ² point-term expression evaluates ``((c - e)·(c - e) - c) / e`` —
  the same multiply/subtract/divide sequence numpy's vectorized
  ``((counts - expected) ** 2 - counts) / expected`` performs elementwise.

That contract is what lets ``kernel`` stay a fingerprint-safe knob: the
``tests/kernels`` equivalence suite asserts byte-identical outputs whenever
numba is installed.

Ops with no native win (``rank_tree.build``, ``blocks.build`` — already
pure vectorized numpy) are intentionally not registered here; dispatch
falls back to their python implementations even under ``kernel="numba"``.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels.dispatch import register
from repro.kernels.pykernels import (
    RankTreeData,
    chi2_paired_point_terms as _py_chi2_paired_point_terms,
    chi2_point_terms as _py_chi2_point_terms,
)

_I64_MAX = np.iinfo(np.int64).max


@njit(cache=True)
def _bisect_left(arr: np.ndarray, lo: int, hi: int, key: int) -> int:
    while lo < hi:
        mid = (lo + hi) >> 1
        if arr[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=True)
def _prefix_stats_jit(
    keys: np.ndarray,
    cw: np.ndarray,
    cwv: np.ndarray,
    cw_off: np.ndarray,
    stride: int,
    key_span: int,
    nlevels: int,
    x: np.ndarray,
    L: np.ndarray,
    w: np.ndarray,
    wv: np.ndarray,
) -> None:
    for q in range(x.shape[0]):
        xq = x[q]
        lq = L[q]
        acc_w = 0.0
        acc_wv = 0.0
        # Ascending level order == the python kernel's bincount order.
        for b in range(nlevels):
            if not (xq >> b) & 1:
                continue
            blk = (xq >> b) - 1
            key = blk * stride + lq + b * key_span
            # The level's leading sentinel is below every real key, so the
            # global hit minus one is the cumulative index directly.
            pos = _bisect_left(keys, cw_off[b], cw_off[b + 1], key) - 1
            lo = cw_off[b] + (blk << b)
            acc_w += cw[pos] - cw[lo]
            acc_wv += cwv[pos] - cwv[lo]
        w[q] = acc_w
        wv[q] = acc_wv


@register("rank_tree.prefix_stats", "numba")
def rank_prefix_stats(
    tree: RankTreeData, x: np.ndarray, L: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.int64)
    L = np.asarray(L, dtype=np.int64)
    w = np.zeros(len(x), dtype=np.float64)
    wv = np.zeros(len(x), dtype=np.float64)
    if len(x) and tree.nlevels:
        _prefix_stats_jit(
            tree.keys,
            tree.cw,
            tree.cwv,
            tree.cw_off,
            tree.stride,
            tree.key_span,
            tree.nlevels,
            x,
            L,
            w,
            wv,
        )
    return w, wv


@njit(cache=True)
def _interval_stats_jit(
    keys: np.ndarray,
    cw: np.ndarray,
    cwv: np.ndarray,
    cw_off: np.ndarray,
    stride: int,
    key_span: int,
    nlevels: int,
    a: np.ndarray,
    b: np.ndarray,
    L: np.ndarray,
    w: np.ndarray,
    wv: np.ndarray,
) -> None:
    for q in range(a.shape[0]):
        l = a[q]
        r = b[q]
        lq = L[q]
        acc_w = 0.0
        acc_wv = 0.0
        # Canonical cover order — level ascending, left edge before right —
        # matching the python kernel's part-ordered bincount exactly.
        for lev in range(nlevels):
            if l >= r:
                break
            span = lev * key_span
            off = cw_off[lev]
            if l & 1:
                key = l * stride + lq + span
                pos = _bisect_left(keys, off, cw_off[lev + 1], key) - 1
                lo = off + (l << lev)
                acc_w += cw[pos] - cw[lo]
                acc_wv += cwv[pos] - cwv[lo]
                l += 1
            if r & 1:
                r -= 1
                key = r * stride + lq + span
                pos = _bisect_left(keys, off, cw_off[lev + 1], key) - 1
                lo = off + (r << lev)
                acc_w += cw[pos] - cw[lo]
                acc_wv += cwv[pos] - cwv[lo]
            l >>= 1
            r >>= 1
        w[q] = acc_w
        wv[q] = acc_wv


@register("rank_tree.interval_stats", "numba")
def rank_interval_stats(
    tree: RankTreeData, a: np.ndarray, b: np.ndarray, L: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    L = np.asarray(L, dtype=np.int64)
    w = np.zeros(len(a), dtype=np.float64)
    wv = np.zeros(len(a), dtype=np.float64)
    if len(a) and tree.nlevels:
        _interval_stats_jit(
            tree.keys,
            tree.cw,
            tree.cwv,
            tree.cw_off,
            tree.stride,
            tree.key_span,
            tree.nlevels,
            a,
            b,
            L,
            w,
            wv,
        )
    return w, wv


@njit(cache=True)
def _cover_walk_jit(
    costs_flat: np.ndarray,
    costs_off: np.ndarray,
    nlevels: int,
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
) -> None:
    for q in range(a.shape[0]):
        l = a[q]
        r = b[q]
        acc = 0.0
        # Same per-pair order as the python kernel: level ascending,
        # left edge before right edge within a level.
        for lev in range(nlevels):
            if l >= r:
                break
            base = costs_off[lev]
            if l & 1:
                acc += costs_flat[base + l]
                l += 1
            if r & 1:
                r -= 1
                acc += costs_flat[base + r]
            l >>= 1
            r >>= 1
        out[q] = acc


@register("blocks.cover_walk", "numba")
def cover_walk(
    costs_flat: np.ndarray,
    costs_off: np.ndarray,
    nlevels: int,
    a: np.ndarray,
    b: np.ndarray,
) -> np.ndarray:
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    out = np.zeros(len(a), dtype=np.float64)
    if len(a) and nlevels:
        _cover_walk_jit(
            costs_flat, np.asarray(costs_off, dtype=np.int64), nlevels, a, b, out
        )
    return out


@njit(cache=True)
def _segment_first_min_jit(
    vals: np.ndarray,
    starts: np.ndarray,
    i_arr: np.ndarray,
    mins: np.ndarray,
    argi: np.ndarray,
) -> None:
    nseg = starts.shape[0]
    total = vals.shape[0]
    for s in range(nseg):
        begin = starts[s]
        stop = starts[s + 1] if s + 1 < nseg else total
        m = vals[begin]
        for t in range(begin + 1, stop):
            if vals[t] < m:
                m = vals[t]
        best = _I64_MAX
        for t in range(begin, stop):
            if vals[t] == m and i_arr[t] < best:
                best = i_arr[t]
        mins[s] = m
        argi[s] = best


@register("dp.segment_first_min", "numba")
def segment_first_min(
    vals: np.ndarray, starts: np.ndarray, i_arr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    vals = np.asarray(vals, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    i_arr = np.asarray(i_arr, dtype=np.int64)
    mins = np.empty(len(starts), dtype=np.float64)
    argi = np.empty(len(starts), dtype=np.int64)
    if len(starts):
        _segment_first_min_jit(vals, starts, i_arr, mins, argi)
    return mins, argi


@njit(cache=True)
def _chi2_terms_1d_jit(
    counts: np.ndarray, m: float, ref: np.ndarray, mask: np.ndarray, out: np.ndarray
) -> None:
    for i in range(counts.shape[0]):
        e = m * ref[i]
        if mask[i] and e > 0.0:
            d = counts[i] - e
            out[i] = (d * d - counts[i]) / e
        else:
            out[i] = 0.0


@register("chi2.point_terms", "numba")
def chi2_point_terms(
    counts: np.ndarray,
    m: "float | np.ndarray",
    reference_pmf: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    counts = np.asarray(counts, dtype=np.float64)
    ref = np.asarray(reference_pmf, dtype=np.float64)
    msk = np.asarray(mask, dtype=np.bool_)
    if (
        counts.ndim == 1
        and np.ndim(m) == 0
        and ref.shape == counts.shape
        and msk.shape == counts.shape
    ):
        out = np.empty_like(counts)
        _chi2_terms_1d_jit(counts, float(m), ref, msk, out)
        return out
    # Broadcast batches (serve's stacked tensors) stay on the numpy kernel:
    # elementwise either way, so results are identical.
    return _py_chi2_point_terms(counts, m, reference_pmf, mask)


@njit(cache=True)
def _paired_terms_1d_jit(
    x: np.ndarray, y: np.ndarray, mask: np.ndarray, out: np.ndarray
) -> None:
    for i in range(x.shape[0]):
        total = x[i] + y[i]
        if mask[i] and total > 0.0:
            d = x[i] - y[i]
            out[i] = (d * d - total) / total
        else:
            out[i] = 0.0


@register("chi2.paired_point_terms", "numba")
def chi2_paired_point_terms(
    counts_x: np.ndarray,
    counts_y: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    x = np.asarray(counts_x, dtype=np.float64)
    y = np.asarray(counts_y, dtype=np.float64)
    msk = np.asarray(mask, dtype=np.bool_)
    if x.ndim == 1 and y.shape == x.shape and msk.shape == x.shape:
        out = np.empty_like(x)
        _paired_terms_1d_jit(x, y, msk, out)
        return out
    # Broadcast batches (median-amplified repeat stacks) stay on the numpy
    # kernel: elementwise either way, so results are identical.
    return _py_chi2_paired_point_terms(counts_x, counts_y, mask)


@njit(cache=True)
def _aggregate_rows_jit(terms: np.ndarray, starts: np.ndarray, out: np.ndarray) -> None:
    rows = terms.shape[0]
    width = terms.shape[1]
    nseg = starts.shape[0]
    for r in range(rows):
        for s in range(nseg):
            begin = starts[s]
            stop = starts[s + 1] if s + 1 < nseg else width
            # Strictly sequential, matching np.add.reduceat (not pairwise).
            acc = terms[r, begin]
            for t in range(begin + 1, stop):
                acc += terms[r, t]
            out[r, s] = acc


@register("serve.aggregate_rows", "numba")
def aggregate_rows(terms: np.ndarray, starts: np.ndarray) -> np.ndarray:
    terms = np.asarray(terms, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    if terms.ndim == 1:
        out1 = np.empty((1, len(starts)), dtype=np.float64)
        _aggregate_rows_jit(terms.reshape(1, -1), starts, out1)
        return out1[0]
    out = np.empty((terms.shape[0], len(starts)), dtype=np.float64)
    _aggregate_rows_jit(terms, starts, out)
    return out


@njit(cache=True)
def _counts_jit(samples: np.ndarray, out: np.ndarray) -> None:
    for i in range(samples.shape[0]):
        out[samples[i]] += 1


@register("sampling.counts_from_samples", "numba")
def counts_from_samples(samples: np.ndarray, n: int) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.int64)
    size = n if samples.size == 0 else max(n, int(samples.max()) + 1)
    out = np.zeros(size, dtype=np.int64)
    if samples.size:
        _counts_jit(samples, out)
    return out
