"""The trial-execution engine: serial or process-pool backends.

Contract
--------

A *trial procedure* is a picklable callable ``procedure(index, seed) ->
TrialOutcome`` that must be a pure function of its arguments (all
randomness flows through ``seed``, a :class:`numpy.random.SeedSequence`).
:func:`run_trials` maps a procedure over a pre-spawned seed list and
returns outcomes **in trial order**, regardless of completion order, so
any aggregation the caller performs (counts, float sums) is bit-identical
between backends and across worker counts.

Fault model
-----------

Python-level exceptions inside a trial are the *procedure's* business —
the robust runner catches its isolatable errors itself and returns them
inside the :class:`TrialOutcome`.  The engine handles the one failure a
procedure cannot: the worker process dying outright (segfault, OOM kill,
``os._exit``).  A dead worker breaks the whole pool, taking every pending
future with it, so the engine re-runs each affected trial alone in a
fresh single-worker pool: innocent trials recover their exact results
(procedures are deterministic in ``seed``), and the genuinely crashing
trial is either surfaced as a :class:`TrialOutcome` carrying a
``WorkerCrash`` :class:`~repro.robustness.resilience.TrialFailure`
(``isolate_crashes=True``, the robust path) or raised as
:class:`ParallelExecutionError` (the plain path).  A dead worker is a
recorded failure, never a hung sweep.

Procedures that cannot be pickled (closures over local state — common in
tests) degrade to the serial backend with a warning rather than failing:
worker counts are a performance hint, not a semantics switch.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.robustness.resilience import TrialFailure

#: ``procedure(index, payload) -> TrialOutcome`` — the batch-first contract:
#: must be picklable for the process backend and deterministic given its
#: payload (all randomness flows through the payload, never ambient state).
TaskProcedure = Callable[[int, Any], "TrialOutcome"]

#: ``procedure(index, seed) -> TrialOutcome`` — the seed-stream special case
#: of :data:`TaskProcedure` used by repeated-trial estimates.
TrialProcedure = Callable[[int, np.random.SeedSequence], "TrialOutcome"]


class ParallelExecutionError(RuntimeError):
    """A worker process died and the caller did not opt into isolation."""

    def __init__(self, trial: int, detail: str) -> None:
        super().__init__(
            f"worker process died while executing trial {trial}: {detail or 'no detail'}"
            " — run serially to debug, or use the fault-isolating runner"
        )
        self.trial = trial


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one trial: a payload on success, a failure record otherwise.

    ``trace``, when a procedure collects one, is the trial's exported event
    stream (plain dicts — picklable across the process boundary).  The
    caller absorbs these **in trial order**, so an assembled trace is
    byte-identical between the serial and process backends.
    """

    index: int
    value: Any = None
    failure: TrialFailure | None = None
    trace: tuple | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def crash_failure(trial: int, detail: str = "") -> TrialFailure:
    """The structured record for a trial whose worker process died."""
    return TrialFailure(
        trial=trial,
        error_type="WorkerCrash",
        message=detail or "worker process terminated abruptly",
        attempts=1,
        elapsed=0.0,
    )


def default_worker_count() -> int:
    """Worker count used for ``workers=0`` ("auto"): one per CPU."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` knob into an effective worker count.

    ``None`` and ``1`` select the serial backend; ``0`` means "auto" (one
    worker per CPU); any other positive integer is taken literally.
    """
    if workers is None:
        return 1
    if not isinstance(workers, (int, np.integer)) or isinstance(workers, bool):
        raise TypeError(f"workers must be an int or None, got {workers!r}")
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers == 0:
        return default_worker_count()
    return int(workers)


def _run_serial(
    procedure: TaskProcedure, payloads: Sequence[Any]
) -> list[TrialOutcome]:
    return [procedure(index, payload) for index, payload in enumerate(payloads)]


def _rerun_isolated(
    procedure: TaskProcedure,
    index: int,
    payload: Any,
    isolate_crashes: bool,
) -> TrialOutcome:
    """Re-run one suspect trial alone in a fresh single-worker pool.

    After a pool break every pending trial looks guilty; giving each its
    own process acquits the innocent (deterministic procedures reproduce
    their exact result) and convicts the crasher without collateral.
    """
    with ProcessPoolExecutor(max_workers=1) as solo:
        future = solo.submit(procedure, index, payload)
        try:
            return future.result()
        except BrokenProcessPool as exc:
            if not isolate_crashes:
                raise ParallelExecutionError(index, str(exc)) from exc
            return TrialOutcome(index=index, failure=crash_failure(index, str(exc)))


def run_tasks(
    procedure: TaskProcedure,
    payloads: Sequence[Any],
    *,
    workers: int | None = None,
    isolate_crashes: bool = False,
) -> list[TrialOutcome]:
    """Execute ``procedure`` over arbitrary payloads, outcomes in task order.

    The batch-first executor: a payload can be a seed, a session batch, or
    any picklable work description.  ``workers`` selects the backend (see
    :func:`resolve_workers`).  With ``isolate_crashes=True`` a dead worker
    yields a ``WorkerCrash`` :class:`TrialOutcome` for the task it was
    running; otherwise it raises :class:`ParallelExecutionError`.  Either
    way the surviving tasks' results are identical to a serial run.
    """
    count = resolve_workers(workers)
    payloads = list(payloads)
    if count <= 1 or len(payloads) <= 1:
        return _run_serial(procedure, payloads)
    try:
        pickle.dumps(procedure)
    except Exception as exc:  # pickle raises a zoo of types
        warnings.warn(
            f"trial procedure is not picklable ({exc!r}); falling back to the "
            "serial backend — results are unchanged, only slower",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(procedure, payloads)

    results: list[TrialOutcome | None] = [None] * len(payloads)
    suspects: list[int] = []
    with ProcessPoolExecutor(max_workers=min(count, len(payloads))) as pool:
        futures = {}
        try:
            for index, payload in enumerate(payloads):
                futures[pool.submit(procedure, index, payload)] = index
        except BrokenProcessPool:
            suspects.extend(range(len(futures), len(payloads)))
        futures_wait(list(futures))
        for future, index in futures.items():
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                suspects.append(index)
    for index in sorted(suspects):
        results[index] = _rerun_isolated(
            procedure, index, payloads[index], isolate_crashes
        )
    assert all(outcome is not None for outcome in results)
    return results  # type: ignore[return-value]


def run_trials(
    procedure: TrialProcedure,
    seeds: Sequence[np.random.SeedSequence],
    *,
    workers: int | None = None,
    isolate_crashes: bool = False,
) -> list[TrialOutcome]:
    """Execute ``procedure`` over ``seeds``, returning outcomes in trial order.

    The seed-stream wrapper over :func:`run_tasks` used by repeated-trial
    estimates: each payload is one trial's pre-spawned
    :class:`numpy.random.SeedSequence`.
    """
    return run_tasks(
        procedure, seeds, workers=workers, isolate_crashes=isolate_crashes
    )
