"""Parallel trial execution with deterministic seed streams.

The experiment suite reduces everything to bulk repeated independent
trials (acceptance rates, robust estimates, bisection evaluations) — an
embarrassingly parallel shape.  :mod:`repro.parallel.engine` fans those
trials out over a :class:`concurrent.futures.ProcessPoolExecutor` while
preserving the library's determinism contract: per-trial RNG sub-streams
are derived with ``SeedSequence.spawn`` *before* any work is scheduled, and
results are re-assembled in trial order, so output is bit-identical to a
serial run at any worker count.  See DESIGN.md § "Parallel trial execution"
for the seeding scheme and the determinism contract.
"""

from repro.parallel.engine import (
    ParallelExecutionError,
    TrialOutcome,
    crash_failure,
    default_worker_count,
    resolve_workers,
    run_trials,
)

__all__ = [
    "ParallelExecutionError",
    "TrialOutcome",
    "crash_failure",
    "default_worker_count",
    "resolve_workers",
    "run_trials",
]
