"""Testing k-modality by reduction to histogram testing.

The paper's Theorem 1.2 remark puts k-modal testing at the same lower bound
as k-histogram testing; this module supplies the matching *upper-bound*
direction through the classical decomposition route (the [CDGR16] template
instantiated with this repository's Algorithm 1):

* every k-modal distribution is ``ε/2``-close to an
  ``L = O(k·log(n)/ε)``-histogram (mode-split Birgé decomposition,
  :func:`repro.distributions.kmodal.birge_flattening`);
* so run the histogram tester for ``H_L`` at distance ``ε/2``:
  k-modal ⇒ within ε/2 of ``H_L`` ⇒ accepted by a *tolerant-enough* member
  test; ε-far from k-modal ⇒ (since ``H_L``-closeness would imply…) — more
  precisely the contrapositive: accepting certifies ``D`` is close to some
  L-histogram, and an extra shape check on the learned histogram verifies
  that candidate is itself k-modal at interval granularity.

Because Algorithm 1 is not *tolerant* (it may reject distributions that are
close to but not exactly in ``H_L``), the reduction tests at the inflated
piece count ``L`` where k-modal inputs are ``ε'``-close with ``ε'`` far
below the tester's resolution — the standard trick, and the reason for the
``log(n)/ε`` piece blow-up.  The net guarantee is one-sided-tolerant
exactly like [CDGR16]'s shape tests: k-modal inputs accepted w.h.p., inputs
ε-far from every k-modal distribution rejected w.h.p.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TesterConfig
from repro.core.tester import Verdict, test_histogram
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.kmodal import kmodal_histogram_pieces, num_direction_changes
from repro.distributions.sampling import SampleSource, as_source
from repro.learning.merge import learn_histogram_agnostic
from repro.util.rng import RandomState


@dataclass(frozen=True)
class KModalVerdict:
    """Outcome of the k-modality test."""

    accept: bool
    reason: str
    pieces_tested: int
    histogram_verdict: Verdict
    candidate_changes: int | None
    samples_used: float


def test_k_modal(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    eps: float,
    *,
    config: TesterConfig | None = None,
    rng: RandomState = None,
) -> KModalVerdict:
    """Test "D is k-modal" vs "D is ε-far from every k-modal distribution".

    Two stages: (1) histogram membership at the Birgé-inflated piece count
    ``L``; (2) a shape check that the learned L-histogram's piece values
    themselves change direction at most ``k`` times (within a noise margin
    absorbed by piece-mass accuracy).  Either failing rejects.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    source = as_source(dist, rng)
    if config is None:
        config = TesterConfig.practical()
    start = source.samples_drawn

    pieces = min(kmodal_histogram_pieces(source.n, k, eps / 2.0), source.n)
    verdict = test_histogram(source, pieces, eps, config=config)
    if not verdict.accept:
        return KModalVerdict(
            accept=False,
            reason=f"not close to any {pieces}-histogram: {verdict.reason}",
            pieces_tested=pieces,
            histogram_verdict=verdict,
            candidate_changes=None,
            samples_used=source.samples_drawn - start,
        )

    # Shape stage: learn an L-histogram candidate and count its direction
    # changes at piece granularity, with per-piece hysteresis sized to the
    # learner's sampling noise (std of a piece's density estimate is about
    # √(mass/m)/width).
    import numpy as np

    from repro.distributions.kmodal import robust_direction_changes
    from repro.learning.merge import merge_learner_samples

    m_learn = merge_learner_samples(pieces, eps / 4.0)
    candidate = learn_histogram_agnostic(source, pieces, eps / 4.0, num_samples=m_learn)
    masses = np.maximum(candidate.piece_masses(), 1.0 / m_learn)
    widths = candidate.partition.lengths().astype(np.float64)
    tolerance = 4.0 * np.sqrt(masses / m_learn) / widths
    changes = robust_direction_changes(candidate.values, tolerance)
    accept = changes <= k
    reason = (
        f"candidate histogram has {changes} direction changes "
        f"{'<=' if accept else '>'} k={k}"
    )
    return KModalVerdict(
        accept=accept,
        reason=reason,
        pieces_tested=pieces,
        histogram_verdict=verdict,
        candidate_changes=changes,
        samples_used=source.samples_drawn - start,
    )


# The public name begins with "test_"; keep pytest from collecting it.
test_k_modal.__test__ = False  # type: ignore[attr-defined]
