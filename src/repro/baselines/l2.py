"""ℓ2 / collision statistics — the substrate of the pre-χ² testers.

Both [ILR12] and the uniformity testers ([Pan08] and the folklore collision
tester) decide through the second moment: for ``m`` i.i.d. samples with
occurrence counts ``N_i``, the pairwise collision count

    ``C = Σ_i N_i (N_i − 1) / 2``

satisfies ``E[C] = (m choose 2) · ‖D‖₂²``, and ``‖D‖₂²`` measures distance
from uniformity: ``‖D − U_I‖₂² = ‖D‖₂² − 1/|I|`` on an interval ``I``.
"""

from __future__ import annotations

import numpy as np


def collision_count(counts: np.ndarray) -> float:
    """Pairwise collisions ``Σ N_i (N_i − 1)/2`` of a count vector."""
    counts = np.asarray(counts, dtype=np.float64)
    if np.any(counts < 0):
        raise ValueError("negative counts")
    return float((counts * (counts - 1.0)).sum() / 2.0)


def l2_norm_squared_estimate(counts: np.ndarray) -> float:
    """Unbiased estimator of ``‖D‖₂²`` from occurrence counts.

    ``2C / (m(m−1))``; requires at least two samples.
    """
    counts = np.asarray(counts, dtype=np.float64)
    m = counts.sum()
    if m < 2:
        raise ValueError(f"need at least 2 samples, got {m}")
    return 2.0 * collision_count(counts) / (m * (m - 1.0))


def uniformity_l2_gap(counts: np.ndarray, width: int) -> float:
    """Estimate of ``‖D_I − U_I‖₂² = ‖D_I‖₂² − 1/|I|`` on a width-``width``
    interval, from the counts of samples that landed in it."""
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    return l2_norm_squared_estimate(counts) - 1.0 / width


def conditional_flatness_test(
    counts: np.ndarray,
    width: int,
    tolerance: float,
) -> bool:
    """Accept "``D`` is flat on this interval" iff the estimated ℓ2 gap is at
    most ``tolerance`` (callers calibrate tolerance to their TV target via
    ``‖x‖₁ ≤ √|I|·‖x‖₂``: TV-farness ``θ`` inside a width-``w`` interval
    forces an ℓ2 gap of at least ``4θ²/w``)."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    if counts.sum() < 2:
        # Too few samples to form any collision estimate: the interval is
        # too light to matter, treat as flat.
        return True
    return uniformity_l2_gap(counts, width) <= tolerance
