"""Testing histograms with a *known* partition (the [DK16] setting).

Section 1.2 contrasts the paper's problem with the easier one "given as
input an explicit partition Π of the domain in k intervals, [test] if D is
indeed a histogram with regard to this specific Π".  With Π known, no
partition discovery and no sieve are needed — the pipeline collapses to:

1. learn the flattening of ``D`` on Π (``O(k/ε²)`` samples, Laplace
   estimator — every interval is a "non-breakpoint" interval now);
2. run the [ADK15] χ² tester of ``D`` against the learned flattening.

This serves both as the [DK16] comparison row in experiment E7 and as an
ablation: the entire gap between this tester's budget and Algorithm 1's is
the price of *not knowing* the partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.core.chi2 import Chi2Result, chi2_test
from repro.core.learner import laplace_estimate
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.sampling import SampleSource, as_source
from repro.util.intervals import Partition
from repro.util.rng import RandomState


@dataclass(frozen=True)
class KnownPartitionVerdict:
    """Outcome of the known-partition histogram test."""

    accept: bool
    learned: Histogram
    chi2: Chi2Result
    samples_used: float


def known_partition_budget(n: int, k: int, eps: float, factor: float = 64.0) -> float:
    """Sample budget: learn (``k/ε²``-ish) + χ² test (``√n/ε²``)."""
    learn = 16.0 * k / (eps / 4.0) ** 2
    test = factor * math.sqrt(n) / eps**2
    return learn + test


def test_known_partition(
    dist: DiscreteDistribution | SampleSource,
    partition: Partition,
    eps: float,
    *,
    rng: RandomState = None,
    chi2_factor: float = 64.0,
) -> KnownPartitionVerdict:
    """Test ``D ∈ H(Π)`` (piecewise-constant on the *given* Π) vs ε-far."""
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    source = as_source(dist, rng)
    if partition.n != source.n:
        raise ValueError("partition does not cover the source domain")
    start = source.samples_drawn

    # Learn the flattening: eps/4 accuracy so the triangle inequality leaves
    # a >= eps/2 soundness margin for the chi2 stage.
    eps_learn = eps / 4.0
    m_learn = max(1, int(math.ceil(16.0 * len(partition) / eps_learn**2)))
    counts = source.draw_counts(m_learn)
    learned = laplace_estimate(counts, partition)

    eps_test = eps / 2.0
    m_test = chi2_factor * math.sqrt(source.n) / eps_test**2
    result = chi2_test(
        source,
        learned,
        eps_test,
        m=m_test,
        accept_fraction=1.0 / 8.0,
        partition=partition,
    )
    return KnownPartitionVerdict(
        accept=result.accept,
        learned=learned,
        chi2=result,
        samples_used=source.samples_drawn - start,
    )


# The public name begins with "test_"; keep pytest from collecting it.
test_known_partition.__test__ = False  # type: ignore[attr-defined]
