"""The [ILR12]-style k-histogram tester (Indyk–Levi–Rubinfeld baseline).

The prior state of the art before [CDGR16] and this paper: a
bisection-based tester with sample complexity ``O(√(kn)/ε⁵ · log n)``.  The
structure reimplemented here follows their approach:

* draw one batch of samples;
* recursively bisect the domain.  An interval survives as a *leaf* when it
  is light (weight below ``ε/(4·k·log n)`` — such intervals jointly carry
  ≤ ε/4 and can be ignored) or when a conditional ℓ2 collision test deems
  the distribution flat on it; otherwise it splits in half;
* accept iff at most ``k·(log₂ n + 1)`` flat leaves are needed.

Why that decision rule: a true k-histogram is exactly flat on each of its
``k`` pieces, and a piece intersects at most ``log₂ n + 1`` dyadic leaf
intervals, so completeness gives ≤ ``k (log₂ n + 1)`` leaves.  Conversely,
if the recursion terminates within the leaf budget, ``D`` is ε-close to the
histogram that flattens it on the leaves (each leaf's conditional TV error
is at most ``ε/4`` by the ℓ2 threshold, light leaves add ≤ ε/4), so a far
``D`` must blow the budget or keep failing flatness tests.

The published constants target worst-case guarantees; the ``factor``
arguments below are calibrated for the experiment grid (E7) and recorded
there.  This baseline's *budget formula* for the landscape table (E1) is
:func:`repro.core.budget.ilr12_budget`, the published bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.l2 import uniformity_l2_gap
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource, as_source
from repro.util.rng import RandomState


@dataclass(frozen=True)
class ILR12Verdict:
    """Outcome of the bisection tester."""

    accept: bool
    reason: str
    flat_leaves: int
    light_leaves: int
    leaf_budget: int
    samples_used: float


def ilr12_budget_practical(n: int, k: int, eps: float, factor: float = 4.0) -> int:
    """The calibrated (non-worst-case) batch size this implementation draws:
    ``factor·√(kn)·log₂n / ε⁴``.  (The published worst-case bound has ε⁻⁵;
    one ε factor is recovered by the shared-batch design.)"""
    if n < 2 or k < 1 or not 0 < eps <= 1:
        raise ValueError(f"bad parameters n={n}, k={k}, eps={eps}")
    return max(16, int(math.ceil(factor * math.sqrt(k * n) * math.log2(n) / eps**4)))


def ilr12_test(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    eps: float,
    *,
    rng: RandomState = None,
    num_samples: int | None = None,
    factor: float = 4.0,
) -> ILR12Verdict:
    """Run the bisection tester for ``H_k``; see the module docstring."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    source = as_source(dist, rng)
    n = source.n
    if k >= n:
        return ILR12Verdict(True, "k >= n is trivial", 0, 0, 0, 0.0)

    m = num_samples if num_samples is not None else ilr12_budget_practical(n, k, eps, factor)
    counts = source.draw_counts(m)
    prefix = np.concatenate(([0], np.cumsum(counts)))

    log_n = math.log2(n)
    light_cut = eps / (4.0 * k * max(1.0, log_n))
    leaf_budget = int(k * (math.floor(log_n) + 1))
    # Conditional TV tolerance eps/4 per leaf => l2-gap tolerance 4(eps/4)^2/w.
    theta = eps / 4.0

    flat_leaves = 0
    light_leaves = 0
    light_weight = 0.0
    # Ignored (light) intervals must jointly stay under eps/4-ish: a far
    # distribution cannot be allowed to hide its evidence by pushing every
    # non-flat region below the per-interval weight cut (the paper-family
    # sawtooth instances do exactly that).  Completeness keeps light leaves
    # confined near breakpoints: at most k·log n of them, each below
    # light_cut, i.e. ≤ eps/4 in total; the extra /3 → /2 slack absorbs
    # empirical-weight noise.
    light_budget = eps / 3.0
    # Iterative stack to avoid recursion limits on large n.
    stack: list[tuple[int, int]] = [(0, n)]
    while stack:
        lo, hi = stack.pop()
        width = hi - lo
        m_interval = float(prefix[hi] - prefix[lo])
        weight = m_interval / m
        if weight <= light_cut:
            light_leaves += 1
            light_weight += weight
            if light_weight > light_budget:
                return ILR12Verdict(
                    accept=False,
                    reason=(
                        f"ignored (light) intervals carry weight "
                        f"{light_weight:.4g} > budget {light_budget:.4g}"
                    ),
                    flat_leaves=flat_leaves,
                    light_leaves=light_leaves,
                    leaf_budget=leaf_budget,
                    samples_used=float(m),
                )
            continue
        flat = width == 1
        if not flat and m_interval >= 2:
            gap = uniformity_l2_gap(counts[lo:hi], width)
            flat = gap <= 4.0 * theta * theta / width
        if flat:
            flat_leaves += 1
            if flat_leaves > leaf_budget:
                return ILR12Verdict(
                    accept=False,
                    reason=f"needed more than {leaf_budget} flat leaves",
                    flat_leaves=flat_leaves,
                    light_leaves=light_leaves,
                    leaf_budget=leaf_budget,
                    samples_used=float(m),
                )
            continue
        mid = lo + width // 2
        stack.append((lo, mid))
        stack.append((mid, hi))

    return ILR12Verdict(
        accept=True,
        reason=f"covered by {flat_leaves} flat leaves (budget {leaf_budget})",
        flat_leaves=flat_leaves,
        light_leaves=light_leaves,
        leaf_budget=leaf_budget,
        samples_used=float(m),
    )
