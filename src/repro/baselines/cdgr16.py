"""The [CDGR16]-style testing-by-learning baseline.

[CDGR16] ("Testing Shape Restrictions of Discrete Distributions") test
``H_k`` with ``O(√(kn)/ε³ · log n)`` samples through the generic framework:

1. **Learn** an approximation ``Ĥ ∈ H_k`` of ``D`` agnostically
   (``O(k/ε²)`` samples);
2. **Check** offline that ``Ĥ`` is close to the class (free here: the
   learner outputs a member of ``H_k``);
3. **Tolerantly identity-test** ``D`` against the explicit ``Ĥ``.

This module reconstructs that framework with the strongest identity stage
buildable from this library's substrate (the authors' own instantiation
routes through the [VV11] estimator, reproduced here only as a budget
formula — see ``repro.core.budget.cdgr16_budget`` for the E1 landscape
lines).  The identity stage combines two statistics, each blind to what the
other sees:

* the **A_ℓ statistic** (``ℓ = 4k``) between the empirical distribution and
  ``Ĥ`` — catches mass misplacement at interval granularity (this is the
  structured-identity reduction of [DKN15]);
* a **within-piece collision statistic** — catches fine-grained
  rearrangement that interval masses cannot see (the sawtooth/Paninski-type
  alternation of Proposition 4.1): on each learned piece, ``D = Ĥ`` implies
  conditional flatness, so excess collisions witness within-piece TV.

Exactly as Section 1.3 of the paper explains, the framework's weak spot is
that ``D ∈ H_k`` does **not** make ``D`` flat inside ``Ĥ``'s pieces — ``D``'s
breakpoints need not align with the learned ones.  The baseline copes the
crude way: it excuses the ``k − 1`` largest per-piece collision excesses
(one per possible breakpoint) — a one-shot, non-iterative discard.  The gap
between this crude discard and Algorithm 1's iterative sieve is measured by
experiments E7 and E15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.l2 import collision_count
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.distances import ak_distance
from repro.distributions.histogram import Histogram
from repro.distributions.sampling import SampleSource, as_source
from repro.learning.merge import learn_histogram_agnostic, merge_learner_samples
from repro.util.rng import RandomState


@dataclass(frozen=True)
class CDGR16Verdict:
    """Outcome of the testing-by-learning baseline."""

    accept: bool
    reason: str
    ak_statistic: float
    ak_threshold: float
    collision_statistic: float
    collision_threshold: float
    learned: Histogram
    samples_used: float


def cdgr16_budget_practical(n: int, k: int, eps: float, factor: float = 8.0) -> int:
    """Calibrated identity-stage batch: ``factor·√(kn)·log₂n/ε³``."""
    if n < 2 or k < 1 or not 0 < eps <= 1:
        raise ValueError(f"bad parameters n={n}, k={k}, eps={eps}")
    return max(16, int(math.ceil(factor * math.sqrt(k * n) * math.log2(n) / eps**3)))


def cdgr16_test(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    eps: float,
    *,
    rng: RandomState = None,
    num_samples: int | None = None,
    factor: float = 8.0,
) -> CDGR16Verdict:
    """Run the testing-by-learning baseline; see the module docstring."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    source = as_source(dist, rng)
    n = source.n
    start = source.samples_drawn

    # Stage 1: agnostic learning at accuracy eps/8.
    learned = learn_histogram_agnostic(
        source, k, eps / 8.0, num_samples=merge_learner_samples(k, eps / 8.0)
    )
    reference = learned.to_pmf()

    # Stage 3: identity testing against the explicit learned histogram.
    m = num_samples if num_samples is not None else cdgr16_budget_practical(n, k, eps, factor)
    counts = source.draw_counts(m)
    empirical = counts / m

    # (a) interval-granularity mass displacement.
    ell = 4 * k
    ak_stat = ak_distance(empirical, reference, ell)
    # Empirical A_l noise floor: each of the <= ell chosen intervals carries
    # a sampling error of about sqrt(mass/m); sum over ell intervals.
    ak_noise = 2.0 * math.sqrt(ell / m)
    ak_threshold = eps / 4.0 + ak_noise

    # (b) within-piece collision excess, excusing the k-1 worst pieces.
    excesses = []
    for interval, value in zip(learned.partition, learned.values):
        width = len(interval)
        if width == 1:
            continue
        c = counts[interval.slice()]
        m_piece = float(c.sum())
        if m_piece < 2:
            continue
        pairs = m_piece * (m_piece - 1.0) / 2.0
        observed = collision_count(c)
        expected_flat = pairs / width
        # Normalised excess estimates m_piece^2 * ||D_I - U_I||_2^2-ish.
        excesses.append(max(0.0, observed - expected_flat) / max(pairs, 1.0) * width)
    excesses.sort(reverse=True)
    excused = excesses[: max(0, k - 1)]
    kept = excesses[max(0, k - 1) :]
    collision_stat = float(sum(kept))
    del excused
    # Each kept term estimates width*||D_I−U_I||₂² >= 4·(conditional TV)²;
    # a TV-eps/4 within-piece rearrangement forces a total of eps²/4-ish.
    noise = 4.0 * len(excesses) * math.sqrt(2.0 / max(m / max(len(excesses), 1), 1.0))
    collision_threshold = eps * eps / 4.0 + noise

    ak_ok = ak_stat <= ak_threshold
    coll_ok = collision_stat <= collision_threshold
    if ak_ok and coll_ok:
        reason = "both identity statistics below threshold"
    elif not ak_ok:
        reason = f"A_l statistic {ak_stat:.4g} > {ak_threshold:.4g}"
    else:
        reason = f"collision statistic {collision_stat:.4g} > {collision_threshold:.4g}"
    return CDGR16Verdict(
        accept=ak_ok and coll_ok,
        reason=reason,
        ak_statistic=ak_stat,
        ak_threshold=ak_threshold,
        collision_statistic=collision_stat,
        collision_threshold=collision_threshold,
        learned=learned,
        samples_used=source.samples_drawn - start,
    )
