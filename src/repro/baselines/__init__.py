"""Baseline testers from prior work, for head-to-head comparisons (E7)."""

from repro.baselines.cdgr16 import CDGR16Verdict, cdgr16_budget_practical, cdgr16_test
from repro.baselines.ilr12 import ILR12Verdict, ilr12_budget_practical, ilr12_test
from repro.baselines.kmodal_tester import KModalVerdict, test_k_modal
from repro.baselines.known_partition import (
    KnownPartitionVerdict,
    known_partition_budget,
    test_known_partition,
)
from repro.baselines.l2 import (
    collision_count,
    conditional_flatness_test,
    l2_norm_squared_estimate,
    uniformity_l2_gap,
)
from repro.baselines.learn_offline import (
    LearnOfflineVerdict,
    learn_offline_budget_practical,
    learn_offline_test,
)
from repro.baselines.uniformity import (
    UniformityVerdict,
    chi2_uniformity_test,
    collision_budget,
    collision_uniformity_test,
)

__all__ = [
    "CDGR16Verdict",
    "ILR12Verdict",
    "KModalVerdict",
    "KnownPartitionVerdict",
    "LearnOfflineVerdict",
    "UniformityVerdict",
    "cdgr16_budget_practical",
    "cdgr16_test",
    "chi2_uniformity_test",
    "collision_budget",
    "collision_count",
    "collision_uniformity_test",
    "conditional_flatness_test",
    "ilr12_budget_practical",
    "ilr12_test",
    "known_partition_budget",
    "l2_norm_squared_estimate",
    "learn_offline_budget_practical",
    "learn_offline_test",
    "test_k_modal",
    "test_known_partition",
    "uniformity_l2_gap",
]
