"""Uniformity testing — the ``k = 1`` special case.

Two classical testers:

* :func:`collision_uniformity_test` — the folklore/[Pan08]-style collision
  tester: estimate ``‖D‖₂²`` and compare with the uniform value ``1/n``;
  ``dTV(D, U) ≥ ε ⇒ ‖D‖₂² ≥ (1 + 4ε²)/n``.  Sample-optimal at
  ``Θ(√n/ε²)``.
* :func:`chi2_uniformity_test` — the [ADK15] χ² tester specialised to the
  uniform reference (Algorithm 1's machinery at ``k = 1``).

Both serve as the ``k = 1`` baseline row of experiment E7 and as the
ground-floor sanity check for the lower-bound experiments (E8): on
Paninski's ``Q_ε`` family they should need ``Θ(√n/ε²)`` samples, no less.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.l2 import l2_norm_squared_estimate
from repro.core.chi2 import Chi2Result, chi2_test
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource, as_source
from repro.util.rng import RandomState
import math


@dataclass(frozen=True)
class UniformityVerdict:
    """Outcome of a uniformity test."""

    accept: bool
    statistic: float
    threshold: float
    samples_used: float


def collision_budget(n: int, eps: float, factor: float = 8.0) -> int:
    """Sample budget of the collision tester, ``O(√n/ε²)``."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    return max(4, int(math.ceil(factor * math.sqrt(n) / eps**2)))


def collision_uniformity_test(
    dist: DiscreteDistribution | SampleSource,
    eps: float,
    *,
    num_samples: int | None = None,
    rng: RandomState = None,
) -> UniformityVerdict:
    """Accept iff the ℓ2-norm estimate is below the midpoint between the
    uniform value ``1/n`` and the ε-far floor ``(1 + 4ε²)/n``."""
    source = as_source(dist, rng)
    n = source.n
    m = num_samples if num_samples is not None else collision_budget(n, eps)
    counts = source.draw_counts(m)
    statistic = l2_norm_squared_estimate(counts)
    threshold = (1.0 + 2.0 * eps * eps) / n
    return UniformityVerdict(
        accept=statistic <= threshold,
        statistic=statistic,
        threshold=threshold,
        samples_used=float(m),
    )


def chi2_uniformity_test(
    dist: DiscreteDistribution | SampleSource,
    eps: float,
    *,
    num_samples: float | None = None,
    rng: RandomState = None,
) -> Chi2Result:
    """The [ADK15] χ² tester against the uniform reference.

    Exact uniformity is χ²-distance 0 from itself, so the Theorem 3.2
    completeness clause applies verbatim; soundness is the TV clause.
    """
    source = as_source(dist, rng)
    n = source.n
    m = num_samples if num_samples is not None else float(collision_budget(n, eps, factor=64.0))
    return chi2_test(
        source,
        DiscreteDistribution.uniform(n),
        eps,
        m=m,
        accept_fraction=1.0 / 8.0,
    )
