"""The Θ(n)-sample baseline: learn everything, decide offline.

Section 1.1's efficiency discussion pivots on this comparison: "one can
always approximate the whole dataset and compute the closest histogram
'offline' from O(n) data points" — a sublinear tester is only worth having
if it beats this.  The baseline:

1. draw ``m = O(n/ε²)`` samples and form the empirical distribution;
2. compute its distance to ``H_k`` exactly with the projection DP;
3. accept iff that distance is below ``ε/2``.

With ``m = Θ(n/ε²)`` the empirical distribution is ``ε/8``-close to ``D``
in TV with high probability, making the plug-in decision correct on both
sides — at a sample (and here also time) cost linear in ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.projection import coarse_flattening_projection, flattening_distance
from repro.distributions.sampling import SampleSource, as_source
from repro.learning.merge import quantile_partition
from repro.util.rng import RandomState


@dataclass(frozen=True)
class LearnOfflineVerdict:
    """Outcome of the learn-then-project baseline."""

    accept: bool
    plugin_distance: float
    threshold: float
    samples_used: float


def learn_offline_budget_practical(n: int, eps: float, factor: float = 32.0) -> int:
    """The batch this implementation draws: ``factor·n/ε²``."""
    if n < 1 or not 0 < eps <= 1:
        raise ValueError(f"bad parameters n={n}, eps={eps}")
    return max(4, int(math.ceil(factor * n / eps**2)))


def learn_offline_test(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    eps: float,
    *,
    rng: RandomState = None,
    num_samples: int | None = None,
    factor: float = 32.0,
) -> LearnOfflineVerdict:
    """Plug-in test: (noise-corrected) empirical distance to ``H_k`` vs ε/2.

    The raw plug-in distance is biased upward by the sampling noise
    ``E Σ_i |N_i/m − D(i)| ≈ Σ_i √(2 D(i)/(π m)) ≤ √(2n/(πm))`` even for a
    perfect histogram, so that analytic floor is subtracted before
    thresholding.  With the default ``m = 32·n/ε²`` the floor is ≈ ε/7.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    source = as_source(dist, rng)
    n = source.n
    m = num_samples if num_samples is not None else learn_offline_budget_practical(n, eps, factor)
    counts = source.draw_counts(m)
    if counts.sum() <= 0:
        raise ValueError("drew zero samples")
    empirical = counts / counts.sum()
    if n <= 1024:
        raw = flattening_distance(empirical, k)
    else:
        # Large domains: the point-granularity DP is O(n²k); split the
        # distance into a grid-level DP term plus the (partition-
        # independent) within-cell deviation so fine structure still counts.
        base = quantile_partition(counts, cells=min(n, max(32 * k, 512)))
        flattened = base.flatten(empirical)
        grid_term = coarse_flattening_projection(flattened, base, k).distance
        within_term = 0.5 * float(abs(empirical - flattened).sum())
        raw = grid_term + within_term
    noise_floor = 0.5 * float(np.sqrt(2.0 * empirical / (math.pi * m)).sum())
    distance = max(0.0, raw - noise_floor)
    threshold = eps / 2.0
    return LearnOfflineVerdict(
        accept=distance <= threshold,
        plugin_distance=distance,
        threshold=threshold,
        samples_used=float(m),
    )
