"""Evaluation harness: trial runners, complexity estimation, workloads."""

from repro.experiments.estimate import ComplexityEstimate, empirical_sample_complexity
from repro.experiments.report import format_series, format_table, print_experiment
from repro.experiments.runner import (
    AcceptanceEstimate,
    RobustAcceptanceEstimate,
    acceptance_probability,
    rejection_probability,
    robust_acceptance_probability,
    success_probability,
)
from repro.experiments.workloads import (
    REGISTRY,
    Workload,
    completeness_workloads,
    get_workload,
    make,
    soundness_workloads,
)

__all__ = [
    "REGISTRY",
    "AcceptanceEstimate",
    "ComplexityEstimate",
    "RobustAcceptanceEstimate",
    "Workload",
    "acceptance_probability",
    "robust_acceptance_probability",
    "completeness_workloads",
    "empirical_sample_complexity",
    "format_series",
    "format_table",
    "get_workload",
    "make",
    "print_experiment",
    "rejection_probability",
    "soundness_workloads",
    "success_probability",
]
