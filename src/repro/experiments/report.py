"""Plain-text table/series rendering for the benchmark harness.

Every benchmark prints the rows its experiment promises in DESIGN.md;
this module keeps the formatting consistent (and diff-able between runs).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value: object) -> str:
    """Human-friendly numeric formatting (3 significant digits, thousands)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    body = "\n".join(line(r) for r in str_rows)
    return f"{line(list(headers))}\n{rule}\n{body}"


def print_experiment(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Print (and return) a titled experiment table — one per benchmark."""
    table = format_table(headers, rows)
    banner = f"\n=== {title} ===\n{table}\n"
    print(banner)
    return banner


def format_series(xs: Sequence[float], ys: Sequence[float], width: int = 48) -> str:
    """A tiny ASCII chart for figure-style experiments (log-ish bars)."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    if not ys:
        return "(empty series)"
    top = max(ys)
    lines = []
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(width * (y / top)))) if top > 0 else ""
        lines.append(f"{format_cell(x):>12} | {bar} {format_cell(y)}")
    return "\n".join(lines)
