"""Repeated-trial measurement of tester behaviour.

The testing model's guarantees are probabilistic (success w.p. ≥ 2/3), so
every experiment reduces to estimating an acceptance probability over
independent trials — with fresh sample streams, and fresh instances when
the workload itself is randomised.  This module is that loop, with Wilson
confidence intervals and exact sample accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource
from repro.util.rng import RandomState, ensure_rng, spawn_rngs
from repro.util.stats import wilson_interval

#: A workload is either a fixed distribution or a per-trial factory.
Workload = Union[DiscreteDistribution, Callable[[np.random.Generator], DiscreteDistribution]]

#: A tester is any callable judging a sample source.
Tester = Callable[[SampleSource], bool]


@dataclass(frozen=True)
class AcceptanceEstimate:
    """Estimated acceptance probability of a tester on a workload."""

    accepted: int
    trials: int
    rate: float
    ci_low: float
    ci_high: float
    mean_samples: float

    def __str__(self) -> str:
        return (
            f"{self.accepted}/{self.trials} accepted "
            f"(rate {self.rate:.2f}, 99% CI [{self.ci_low:.2f}, {self.ci_high:.2f}], "
            f"~{self.mean_samples:,.0f} samples/trial)"
        )


def _materialise(workload: Workload, gen: np.random.Generator) -> DiscreteDistribution:
    if isinstance(workload, DiscreteDistribution):
        return workload
    return workload(gen)


def acceptance_probability(
    workload: Workload,
    tester: Tester,
    trials: int,
    rng: RandomState = None,
) -> AcceptanceEstimate:
    """Run ``trials`` independent tests and estimate the acceptance rate.

    Each trial gets an independent RNG stream (instance draw and sample
    stream both), so trials are exchangeable and the binomial analysis of
    the confidence interval is exact.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    streams = spawn_rngs(rng, trials)
    accepted = 0
    total_samples = 0.0
    for gen in streams:
        dist = _materialise(workload, gen)
        source = SampleSource(dist, gen)
        if tester(source):
            accepted += 1
        total_samples += source.samples_drawn
    rate = accepted / trials
    low, high = wilson_interval(accepted, trials)
    return AcceptanceEstimate(
        accepted=accepted,
        trials=trials,
        rate=rate,
        ci_low=low,
        ci_high=high,
        mean_samples=total_samples / trials,
    )


def rejection_probability(
    workload: Workload,
    tester: Tester,
    trials: int,
    rng: RandomState = None,
) -> AcceptanceEstimate:
    """Like :func:`acceptance_probability` but counting rejections."""
    estimate = acceptance_probability(workload, tester, trials, rng)
    low, high = wilson_interval(estimate.trials - estimate.accepted, estimate.trials)
    return AcceptanceEstimate(
        accepted=estimate.trials - estimate.accepted,
        trials=estimate.trials,
        rate=1.0 - estimate.rate,
        ci_low=low,
        ci_high=high,
        mean_samples=estimate.mean_samples,
    )


def success_probability(
    workload: Workload,
    tester: Tester,
    should_accept: bool,
    trials: int,
    rng: RandomState = None,
) -> AcceptanceEstimate:
    """Acceptance or rejection rate, whichever counts as success."""
    if should_accept:
        return acceptance_probability(workload, tester, trials, rng)
    return rejection_probability(workload, tester, trials, rng)
