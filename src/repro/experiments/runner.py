"""Repeated-trial measurement of tester behaviour.

The testing model's guarantees are probabilistic (success w.p. ≥ 2/3), so
every experiment reduces to estimating an acceptance probability over
independent trials — with fresh sample streams, and fresh instances when
the workload itself is randomised.  This module is that loop, with Wilson
confidence intervals and exact sample accounting.

Trials are independent, so the loop fans out over the
:mod:`repro.parallel` engine: per-trial ``SeedSequence.spawn`` sub-streams
are derived up front and outcomes are aggregated in trial order, making
parallel output bit-identical to serial output at any ``workers`` count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import PairedSampleSource, SampleSource
from repro.observability.metrics import get_metrics
from repro.observability.trace import NULL_TRACER, RecordingTracer, Tracer
from repro.parallel.engine import TrialOutcome, run_trials
from repro.robustness.resilience import (
    Deadline,
    DeadlineSource,
    TooManyTrialFailures,
    TrialFailure,
    TrialPolicy,
    run_with_retry,
)
from repro.util.rng import RandomState, child_rng, spawn_seed_sequences
from repro.util.stats import wilson_interval

#: A workload is either a fixed distribution or a per-trial factory.  A
#: factory may instead return a ``(p, q)`` *tuple* of distributions — a
#: two-sample (closeness) workload; such trials judge the tester on a
#: :class:`~repro.distributions.sampling.PairedSampleSource` built from the
#: pair, with the trial's budget cap enforced jointly across both streams.
Workload = Union[DiscreteDistribution, Callable[[np.random.Generator], DiscreteDistribution]]

#: A tester is any callable judging a sample source.  A tester that sets
#: ``supports_trace = True`` additionally accepts a ``trace=`` keyword and
#: will be handed each trial's recording tracer when tracing is on.
#: Testers for paired workloads receive the trial's
#: :class:`~repro.distributions.sampling.PairedSampleSource` instead.
Tester = Callable[[SampleSource], bool]


def _judge(tester: Tester, source: SampleSource, tracer: Tracer | None) -> bool:
    """Invoke a tester, passing the tracer only when it advertises support."""
    if tracer is not None and getattr(tester, "supports_trace", False):
        return bool(tester(source, trace=tracer))
    return bool(tester(source))

#: Per-trial source decorator: wraps the trial's fresh source (e.g. in a
#: :class:`~repro.robustness.faults.FaultInjectingSource`); the generator is
#: the trial's own stream, so wrappers stay reproducible per trial.
SourceWrapper = Callable[[SampleSource, np.random.Generator], SampleSource]


@dataclass(frozen=True)
class AcceptanceEstimate:
    """Estimated acceptance probability of a tester on a workload."""

    accepted: int
    trials: int
    rate: float
    ci_low: float
    ci_high: float
    mean_samples: float

    def __str__(self) -> str:
        return (
            f"{self.accepted}/{self.trials} accepted "
            f"(rate {self.rate:.2f}, 99% CI [{self.ci_low:.2f}, {self.ci_high:.2f}], "
            f"~{self.mean_samples:,.0f} samples/trial)"
        )


def _materialise(workload: Workload, gen: np.random.Generator) -> DiscreteDistribution:
    if isinstance(workload, DiscreteDistribution):
        return workload
    return workload(gen)


def _plain_source(
    dist, gen: np.random.Generator
) -> "SampleSource | PairedSampleSource":
    """The unguarded trial's source: single-stream, or a joint-budget pair."""
    if isinstance(dist, tuple):
        p, q = dist
        return PairedSampleSource(p, q, gen)
    return SampleSource(dist, gen)


def _guarded_source(
    dist,
    gen: np.random.Generator,
    max_samples: "float | None",
    wrap: "SourceWrapper | None",
    deadline: "Deadline | None",
) -> "SampleSource | PairedSampleSource":
    """The fault-isolated trial's source, with wrappers composed per stream.

    For a ``(p, q)`` pair each stream is wrapped independently (faults and
    deadlines hit the stream they were drawn through, exactly as for a
    single source) while the budget cap is enforced *jointly* by the pair —
    the cap bounds total draw volume, which is what the sample-complexity
    experiments measure.
    """

    def build(d) -> SampleSource:
        source = SampleSource(d, child_rng(gen))
        if wrap is not None:
            source = wrap(source, gen)
        if deadline is not None:
            source = DeadlineSource(source, deadline)
        return source

    if isinstance(dist, tuple):
        p, q = dist
        return PairedSampleSource(build(p), build(q), max_samples=max_samples)
    source: SampleSource = SampleSource(dist, gen, max_samples=max_samples)
    if wrap is not None:
        source = wrap(source, gen)
    if deadline is not None:
        source = DeadlineSource(source, deadline)
    return source


@dataclass(frozen=True)
class PlainTrial:
    """One unguarded trial: draw the instance, run the tester, report.

    A module-level class (not a closure) so the process backend can pickle
    it; exceptions propagate — the plain loop has no isolation semantics.
    """

    workload: Workload
    tester: Tester
    collect_trace: bool = False

    def __call__(self, index: int, seed: np.random.SeedSequence) -> TrialOutcome:
        gen = np.random.default_rng(seed)
        dist = _materialise(self.workload, gen)
        source = _plain_source(dist, gen)
        tracer = RecordingTracer() if self.collect_trace else None
        verdict = _judge(self.tester, source, tracer)
        return TrialOutcome(
            index=index,
            value=(verdict, source.samples_drawn),
            trace=tuple(tracer.export()) if tracer is not None else None,
        )


@dataclass(frozen=True)
class RobustTrial:
    """One fault-isolated trial: retries, deadline, structured failure.

    Runs entirely inside the worker (isolation must survive the process
    boundary): transient stream errors are retried on a fresh sub-stream of
    the trial's own seed, the wall-clock deadline and sample cap are
    enforced per attempt, and an isolatable error is *returned* as a
    :class:`~repro.robustness.resilience.TrialFailure` rather than raised —
    a worker never dies from an isolated failure.
    """

    workload: Workload
    tester: Tester
    policy: TrialPolicy
    wrap_source: SourceWrapper | None
    collect_trace: bool = False

    def __call__(self, index: int, seed: np.random.SeedSequence) -> TrialOutcome:
        trial_stream = np.random.default_rng(seed)
        policy = self.policy
        deadline = (
            Deadline(policy.trial_timeout) if policy.trial_timeout is not None else None
        )
        started = time.monotonic()
        last_attempt = [0]
        # One tracer per *attempt*, so a retried attempt's partial events
        # never contaminate the surviving attempt's trace.
        last_tracer: list[RecordingTracer | None] = [None]

        def attempt(attempt_number: int) -> tuple[bool, float]:
            last_attempt[0] = attempt_number
            gen = child_rng(trial_stream)
            dist = _materialise(self.workload, gen)
            source = _guarded_source(
                dist, gen, policy.max_samples, self.wrap_source, deadline
            )
            tracer = RecordingTracer() if self.collect_trace else None
            last_tracer[0] = tracer
            verdict = _judge(self.tester, source, tracer)
            return bool(verdict), source.samples_drawn

        try:
            (verdict, samples), _ = run_with_retry(attempt, policy.retry)
        except policy.isolate as exc:
            return TrialOutcome(
                index=index,
                failure=TrialFailure(
                    trial=index,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=last_attempt[0],
                    elapsed=time.monotonic() - started,
                ),
            )
        tracer = last_tracer[0]
        return TrialOutcome(
            index=index,
            value=(verdict, samples),
            trace=tuple(tracer.export()) if tracer is not None else None,
        )


def acceptance_probability(
    workload: Workload,
    tester: Tester,
    trials: int,
    rng: RandomState = None,
    *,
    workers: int | None = None,
    trace: Tracer = NULL_TRACER,
) -> AcceptanceEstimate:
    """Run ``trials`` independent tests and estimate the acceptance rate.

    Each trial gets an independent RNG stream (instance draw and sample
    stream both), so trials are exchangeable and the binomial analysis of
    the confidence interval is exact.

    ``workers`` fans the trials out over worker processes (see
    :func:`repro.parallel.engine.resolve_workers`); the estimate is
    bit-identical to the serial one at any worker count.  With an enabled
    ``trace``, each trial records its own sub-trace in the worker and the
    streams are absorbed here in trial order — so the assembled trace is
    byte-identical across worker counts too.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    seeds = spawn_seed_sequences(rng, trials)
    procedure = PlainTrial(workload, tester, collect_trace=trace.enabled)
    outcomes = run_trials(procedure, seeds, workers=workers)
    accepted = 0
    total_samples = 0.0
    for outcome in outcomes:  # trial order: float sums match serial exactly
        trace.absorb(outcome.trace, trial=outcome.index)
        verdict, samples = outcome.value
        if verdict:
            accepted += 1
        total_samples += samples
    rate = accepted / trials
    low, high = wilson_interval(accepted, trials)
    return AcceptanceEstimate(
        accepted=accepted,
        trials=trials,
        rate=rate,
        ci_low=low,
        ci_high=high,
        mean_samples=total_samples / trials,
    )


def rejection_probability(
    workload: Workload,
    tester: Tester,
    trials: int,
    rng: RandomState = None,
    *,
    workers: int | None = None,
    trace: Tracer = NULL_TRACER,
) -> AcceptanceEstimate:
    """Like :func:`acceptance_probability` but counting rejections."""
    estimate = acceptance_probability(
        workload, tester, trials, rng, workers=workers, trace=trace
    )
    low, high = wilson_interval(estimate.trials - estimate.accepted, estimate.trials)
    return AcceptanceEstimate(
        accepted=estimate.trials - estimate.accepted,
        trials=estimate.trials,
        rate=1.0 - estimate.rate,
        ci_low=low,
        ci_high=high,
        mean_samples=estimate.mean_samples,
    )


def success_probability(
    workload: Workload,
    tester: Tester,
    should_accept: bool,
    trials: int,
    rng: RandomState = None,
    *,
    policy: TrialPolicy | None = None,
    wrap_source: SourceWrapper | None = None,
    workers: int | None = None,
    trace: Tracer = NULL_TRACER,
) -> AcceptanceEstimate:
    """Acceptance or rejection rate, whichever counts as success.

    With a ``policy`` (or ``wrap_source``), trials run through the
    fault-isolating :func:`robust_acceptance_probability` path instead of
    the bare loop.
    """
    if policy is None and wrap_source is None:
        if should_accept:
            return acceptance_probability(
                workload, tester, trials, rng, workers=workers, trace=trace
            )
        return rejection_probability(
            workload, tester, trials, rng, workers=workers, trace=trace
        )
    estimate = robust_acceptance_probability(
        workload, tester, trials, rng, policy=policy, wrap_source=wrap_source,
        workers=workers, trace=trace,
    )
    if should_accept:
        return estimate
    low, high = wilson_interval(estimate.trials - estimate.accepted, estimate.trials)
    return RobustAcceptanceEstimate(
        accepted=estimate.trials - estimate.accepted,
        trials=estimate.trials,
        rate=1.0 - estimate.rate,
        ci_low=low,
        ci_high=high,
        mean_samples=estimate.mean_samples,
        failures=estimate.failures,
        attempted=estimate.attempted,
    )


@dataclass(frozen=True)
class RobustAcceptanceEstimate(AcceptanceEstimate):
    """An acceptance estimate whose loop survived isolated trial failures.

    ``trials`` counts only *completed* trials (the binomial analysis runs
    over them); ``attempted`` counts every trial started, and ``failures``
    holds one structured record per trial that was dropped after exhausting
    its retries.
    """

    failures: tuple[TrialFailure, ...] = ()
    attempted: int = 0

    @property
    def failure_rate(self) -> float:
        return len(self.failures) / self.attempted if self.attempted else 0.0

    def __str__(self) -> str:
        base = super().__str__()
        if not self.failures:
            return base
        return f"{base} [{len(self.failures)}/{self.attempted} trials failed]"


def robust_acceptance_probability(
    workload: Workload,
    tester: Tester,
    trials: int,
    rng: RandomState = None,
    *,
    policy: TrialPolicy | None = None,
    wrap_source: SourceWrapper | None = None,
    workers: int | None = None,
    trace: Tracer = NULL_TRACER,
) -> RobustAcceptanceEstimate:
    """Like :func:`acceptance_probability`, with trial-level fault isolation.

    Each trial runs under ``policy``: transient stream errors are retried on
    a *fresh* sub-stream (deterministic faults would otherwise repeat
    forever), the per-trial wall-clock deadline and sample cap are enforced,
    and a trial that still fails is recorded as a
    :class:`~repro.robustness.resilience.TrialFailure` while the estimate
    proceeds over the surviving trials.  Only when the failure rate exceeds
    ``policy.max_failure_rate`` (or no trial completes) does the whole
    estimate fail, with
    :class:`~repro.robustness.resilience.TooManyTrialFailures`.

    ``wrap_source`` decorates each trial's source — the hook fault-injection
    experiments use to corrupt the stream the tester sees.

    With ``workers`` the trials fan out over worker processes; isolation
    extends across the process boundary — a worker that dies outright is
    recorded as a ``WorkerCrash`` :class:`TrialFailure` for the trial it was
    running (never a hung sweep), and every other trial's result is exactly
    what a serial run would have produced.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if policy is None:
        policy = TrialPolicy()
    seeds = spawn_seed_sequences(rng, trials)
    procedure = RobustTrial(
        workload, tester, policy, wrap_source, collect_trace=trace.enabled
    )
    outcomes = run_trials(procedure, seeds, workers=workers, isolate_crashes=True)

    accepted = 0
    total_samples = 0.0
    failures: list[TrialFailure] = []
    for outcome in outcomes:  # trial order: aggregation matches serial exactly
        if outcome.failure is not None:
            failures.append(outcome.failure)
            get_metrics().counter(
                "runner.trial_failures", error=outcome.failure.error_type
            ).inc()
            trace.event(
                "trial_failure",
                trial=outcome.index,
                error=outcome.failure.error_type,
                attempts=outcome.failure.attempts,
            )
            continue
        trace.absorb(outcome.trace, trial=outcome.index)
        verdict, samples = outcome.value
        if verdict:
            accepted += 1
        total_samples += samples

    completed = trials - len(failures)
    if completed == 0 or len(failures) / trials > policy.max_failure_rate:
        raise TooManyTrialFailures(tuple(failures), trials, policy.max_failure_rate)
    rate = accepted / completed
    low, high = wilson_interval(accepted, completed)
    return RobustAcceptanceEstimate(
        accepted=accepted,
        trials=completed,
        rate=rate,
        ci_low=low,
        ci_high=high,
        mean_samples=total_samples / completed,
        failures=tuple(failures),
        attempted=trials,
    )
