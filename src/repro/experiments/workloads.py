"""Named workloads — the scenarios the experiments (and examples) run on.

The paper's motivation is database-flavoured (histograms as selectivity
summaries, [Koo80, PIHS96, JKM+98, …]); the registry mirrors that: each
workload is an attribute-value distribution a query optimiser might meet,
tagged with its ground truth relative to ``H_k``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.util.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class Workload:
    """A named, reproducible distribution scenario."""

    name: str
    description: str
    #: ``factory(n, k, eps, rng)`` — instantiate at the experiment's scale.
    factory: Callable[[int, int, float, np.random.Generator], DiscreteDistribution]
    #: Whether the instance is in ``H_k`` ("complete"), certified ε-far
    #: ("far"), or in between ("ambiguous" — excluded from pass/fail stats).
    nature: str


def _staircase(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    return families.staircase(n, k).to_distribution()


def _random_hist(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    return families.random_histogram(n, k, gen, min_width=max(1, n // (8 * k))).to_distribution()


def _spiky_hist(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    return families.random_histogram(n, k, gen, concentration=0.3).to_distribution()


def _uniform(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    return families.uniform(n)


def _sawtooth_uniform(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    return families.far_from_hk(n, k, eps, gen)


def _sawtooth_staircase(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    # Perturb a coarse histogram (k//2 pieces keeps enough perturbable pairs)
    base = families.staircase(n, max(1, k // 2), ratio=1.5)
    return families.far_from_hk(n, k, eps, gen, base=base)


def _paninski(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    from repro.lowerbounds.paninski import paninski_instance

    even_n = n - (n % 2)
    c = min(6.0, 0.9 / eps)
    return paninski_instance(even_n, eps, gen, c=c).embed(n)


def _zipf(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    return families.zipf(n, alpha=1.0)


def _bimodal(n: int, k: int, eps: float, gen: np.random.Generator) -> DiscreteDistribution:
    return families.discretized_gaussian_mixture(
        n, centers=[0.25, 0.7], widths=[0.05, 0.1], weights=[0.45, 0.55]
    )


#: The registry.  "complete" workloads are exact k-histograms; "far"
#: workloads are certified ε-far from H_k by construction; "ambiguous"
#: workloads have ground truth depending on (n, k, ε) and are used with
#: explicitly computed distances.
REGISTRY: dict[str, Workload] = {
    w.name: w
    for w in [
        Workload(
            "uniform",
            "flat attribute (e.g. hash-distributed keys); the 1-histogram",
            _uniform,
            "complete",
        ),
        Workload(
            "staircase",
            "price-band style attribute: k geometric steps",
            _staircase,
            "complete",
        ),
        Workload(
            "random-histogram",
            "random k-piece attribute profile (Dirichlet masses)",
            _random_hist,
            "complete",
        ),
        Workload(
            "spiky-histogram",
            "random k-piece profile with concentrated (spiky) masses",
            _spiky_hist,
            "complete",
        ),
        Workload(
            "sawtooth-uniform",
            "paired ±δ perturbation of uniform; certified ε-far from H_k",
            _sawtooth_uniform,
            "far",
        ),
        Workload(
            "sawtooth-staircase",
            "paired perturbation of a coarse staircase; certified ε-far",
            _sawtooth_staircase,
            "far",
        ),
        Workload(
            "paninski",
            "the Q_ε lower-bound family (far from H_k for k < n/3)",
            _paninski,
            "far",
        ),
        Workload(
            "zipf",
            "Zipfian product popularity (smooth decay; distance to H_k varies)",
            _zipf,
            "ambiguous",
        ),
        Workload(
            "bimodal",
            "two-segment customer-age mixture (smooth; distance varies)",
            _bimodal,
            "ambiguous",
        ),
    ]
}


def get_workload(name: str) -> Workload:
    """Look up a workload by name (raising with the available names)."""
    if name not in REGISTRY:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(REGISTRY)}")
    return REGISTRY[name]


def make(name: str, n: int, k: int, eps: float, rng: RandomState = None) -> DiscreteDistribution:
    """Instantiate a named workload at the given scale."""
    return get_workload(name).factory(n, k, eps, ensure_rng(rng))


@dataclass(frozen=True)
class BoundWorkload:
    """A named workload bound to a scale: a picklable per-trial factory.

    The trial runner accepts any ``factory(gen) -> DiscreteDistribution``;
    lambdas closing over (n, k, ε) cannot cross a process boundary, so the
    parallel paths (``repro bench``, E-benchmarks) bind the scale in this
    module-level class instead.
    """

    name: str
    n: int
    k: int
    eps: float

    def __call__(self, gen: np.random.Generator) -> DiscreteDistribution:
        return get_workload(self.name).factory(self.n, self.k, self.eps, gen)


#: Memoized ground-truth labels, keyed by (pmf bytes, shape, dtype, k).
#: Sweeps re-label the same instance once per point; the cache is bounded so
#: long sweeps over many distinct instances cannot grow memory without limit.
_GROUND_TRUTH_CACHE: "OrderedDict[tuple, tuple[float, float]]" = OrderedDict()
_GROUND_TRUTH_CACHE_SIZE = 128


def ground_truth_bounds(
    dist: DiscreteDistribution | np.ndarray, k: int
) -> tuple[float, float]:
    """Certified ``(lower, upper)`` bounds on ``dTV(p, H_k)``, memoized.

    The key is the pmf's raw bytes plus ``k``, so repeated labelling of the
    same workload instance (e.g. once per sweep point across trials) costs
    one projection, not many.  The cache is LRU-bounded at
    ``_GROUND_TRUTH_CACHE_SIZE`` entries.  Labels are pure functions of the
    pmf — nothing here touches RNG streams or checkpoint fingerprints.
    """
    from repro.distributions.projection import histogram_distance_bounds

    pmf = np.ascontiguousarray(
        dist.pmf if isinstance(dist, DiscreteDistribution) else np.asarray(dist, float)
    )
    from repro.observability.metrics import get_metrics

    # Shape and dtype are part of the key: two arrays with identical raw
    # bytes but different shape or dtype (e.g. a float32 pmf whose bytes
    # happen to coincide with half of a float64 one) must never collide.
    key = (pmf.tobytes(), pmf.shape, pmf.dtype.str, int(k))
    cached = _GROUND_TRUTH_CACHE.get(key)
    if cached is not None:
        _GROUND_TRUTH_CACHE.move_to_end(key)
        get_metrics().counter("workloads.ground_truth_cache", result="hit").inc()
        return cached
    get_metrics().counter("workloads.ground_truth_cache", result="miss").inc()
    bounds = histogram_distance_bounds(pmf, int(k))
    _GROUND_TRUTH_CACHE[key] = bounds
    if len(_GROUND_TRUTH_CACHE) > _GROUND_TRUTH_CACHE_SIZE:
        _GROUND_TRUTH_CACHE.popitem(last=False)
    return bounds


# -- two-sample (closeness) workloads ----------------------------------------

PmfPair = "tuple[DiscreteDistribution, DiscreteDistribution]"


@dataclass(frozen=True)
class PairedWorkload:
    """A named, reproducible two-distribution scenario for closeness
    testing.  ``nature`` is "close" (``p = q``, a sound tester must accept)
    or "far" (``dTV(p, q) ≥ ε`` exactly by construction)."""

    name: str
    description: str
    #: ``factory(n, k, eps, rng) -> (p, q)`` at the experiment's scale.
    factory: Callable[[int, int, float, np.random.Generator], tuple]
    nature: str


def _identical_staircase(n, k, eps, gen):
    d = families.staircase(n, k).to_distribution()
    return d, d


def _identical_random(n, k, eps, gen):
    d = families.random_histogram(n, k, gen, min_width=max(1, n // (8 * k))).to_distribution()
    return d, d


def _shifted_staircase(n, k, eps, gen):
    p, q, _ = families.closeness_pair(n, k, eps)
    return p.to_distribution(), q.to_distribution()


def _offset_combs(n, k, eps, gen):
    # Two combs in antiphase: both exact 2·teeth-histograms, far apart.
    teeth = max(1, k // 2)
    p = families.two_level_comb(n, teeth)
    q = DiscreteDistribution(p.pmf[::-1].copy())
    return p, q


def _lower_bound_pair(n, k, eps, gen):
    even_n = n - (n % 2)
    p, q, _ = families.closeness_lower_bound_pair(even_n, min(eps, 0.49), gen)
    return p.embed(n), q.embed(n)


CLOSENESS_REGISTRY: dict[str, PairedWorkload] = {
    w.name: w
    for w in [
        PairedWorkload(
            "identical-staircase",
            "two streams of the same k-step price-band attribute",
            _identical_staircase,
            "close",
        ),
        PairedWorkload(
            "identical-random",
            "two streams of one random k-piece profile",
            _identical_random,
            "close",
        ),
        PairedWorkload(
            "shifted-staircase",
            "staircase vs staircase with ε mass moved between piece pairs "
            "(exact dTV = ε; flattening-proof)",
            _shifted_staircase,
            "far",
        ),
        PairedWorkload(
            "offset-combs",
            "two antiphase heavy/light combs (exact 2·teeth-histograms)",
            _offset_combs,
            "far",
        ),
        PairedWorkload(
            "flattening-blind",
            "uniform vs within-pair ±δ perturbation: dTV = ε but invisible "
            "to any interval flattening (the promise-violation lower bound)",
            _lower_bound_pair,
            "far",
        ),
    ]
}


def get_paired_workload(name: str) -> PairedWorkload:
    """Look up a closeness workload by name (raising with the names)."""
    if name not in CLOSENESS_REGISTRY:
        raise KeyError(
            f"unknown paired workload {name!r}; available: {sorted(CLOSENESS_REGISTRY)}"
        )
    return CLOSENESS_REGISTRY[name]


def make_pair(
    name: str, n: int, k: int, eps: float, rng: RandomState = None
) -> tuple[DiscreteDistribution, DiscreteDistribution]:
    """Instantiate a named paired workload at the given scale."""
    return get_paired_workload(name).factory(n, k, eps, ensure_rng(rng))


@dataclass(frozen=True)
class BoundPairedWorkload:
    """A paired workload bound to a scale: a picklable per-trial factory
    returning ``(p, q)`` (the two-sample sibling of
    :class:`BoundWorkload`)."""

    name: str
    n: int
    k: int
    eps: float

    def __call__(
        self, gen: np.random.Generator
    ) -> tuple[DiscreteDistribution, DiscreteDistribution]:
        return get_paired_workload(self.name).factory(self.n, self.k, self.eps, gen)


def pair_ground_truth(
    p: DiscreteDistribution | np.ndarray, q: DiscreteDistribution | np.ndarray
) -> float:
    """Exact ``dTV(p, q)`` — for pairs the ground truth is closed-form
    (no projection DP needed), so no cache either."""
    pp = p.pmf if isinstance(p, DiscreteDistribution) else np.asarray(p, float)
    qq = q.pmf if isinstance(q, DiscreteDistribution) else np.asarray(q, float)
    if pp.shape != qq.shape:
        raise ValueError("pair pmfs cover different domains")
    return 0.5 * float(np.abs(pp - qq).sum())


def closeness_close_workloads() -> list[PairedWorkload]:
    """All paired workloads with ``p = q``."""
    return [w for w in CLOSENESS_REGISTRY.values() if w.nature == "close"]


def closeness_far_workloads() -> list[PairedWorkload]:
    """All paired workloads with exact ``dTV(p, q) ≥ ε`` by construction."""
    return [w for w in CLOSENESS_REGISTRY.values() if w.nature == "far"]


def completeness_workloads() -> list[Workload]:
    """All workloads whose instances are exact k-histograms."""
    return [w for w in REGISTRY.values() if w.nature == "complete"]


def soundness_workloads() -> list[Workload]:
    """All workloads whose instances are certified ε-far from ``H_k``."""
    return [w for w in REGISTRY.values() if w.nature == "far"]
