"""Empirical sample complexity by bisection.

Experiments E4–E6 chart how many samples the testers *actually need* as
``n``, ``k``, ``ε`` vary.  "Need" is operationalised the standard way: the
smallest budget at which the tester succeeds on both a completeness and a
soundness workload with rate ≥ 2/3 (estimated over independent trials).

The budget knob is a multiplicative scale on every stage's sample size
(``TesterConfig.budget_scale`` for Algorithm 1, ``num_samples`` for the
single-batch baselines); the search bisects it on a log scale and reports
the *measured* samples drawn at the frontier, not the knob value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.experiments.runner import SourceWrapper, Tester, Workload, success_probability
from repro.observability.trace import NULL_TRACER, Tracer
from repro.robustness.resilience import TrialPolicy
from repro.util.rng import RandomState, ensure_rng, spawn_rngs

#: ``make_tester(scale) -> tester`` — a tester family indexed by budget.
TesterFamily = Callable[[float], Tester]


@dataclass(frozen=True)
class ComplexityEstimate:
    """Result of the bisection search."""

    samples: float  # measured samples/trial at the accepted frontier
    scale: float  # the budget-knob value at the frontier
    scale_low: float  # largest scale that failed
    evaluations: int
    target_rate: float


def _succeeds(
    family: TesterFamily,
    scale: float,
    complete: Workload,
    far: Workload,
    trials: int,
    target_rate: float,
    rng: RandomState,
    policy: TrialPolicy | None = None,
    wrap_source: SourceWrapper | None = None,
    workers: int | None = None,
    trace: Tracer = NULL_TRACER,
) -> tuple[bool, float]:
    """Does the tester at this budget clear the bar on both sides?

    Returns (success, mean samples per trial across both workloads).
    """
    rng_a, rng_b = spawn_rngs(rng, 2)
    tester = family(scale)
    with trace.span("evaluation", scale=scale) as span:
        comp = success_probability(
            complete, tester, True, trials, rng_a, policy=policy,
            wrap_source=wrap_source, workers=workers, trace=trace,
        )
        if comp.rate < target_rate:
            span.set(success=False)
            return False, comp.mean_samples
        sound = success_probability(
            far, tester, False, trials, rng_b, policy=policy,
            wrap_source=wrap_source, workers=workers, trace=trace,
        )
        mean = 0.5 * (comp.mean_samples + sound.mean_samples)
        success = sound.rate >= target_rate
        span.set(success=success)
        return success, mean


def empirical_sample_complexity(
    family: TesterFamily,
    complete: Workload,
    far: Workload,
    *,
    trials: int = 24,
    target_rate: float = 2.0 / 3.0,
    scale_lo: float = 1e-3,
    scale_hi: float = 4.0,
    bisection_steps: int = 7,
    rng: RandomState = None,
    policy: TrialPolicy | None = None,
    wrap_source: SourceWrapper | None = None,
    workers: int | None = None,
    trace: Tracer = NULL_TRACER,
) -> ComplexityEstimate:
    """Bisect the budget scale for the smallest 2/3-successful budget.

    ``scale_hi`` must succeed (it is verified first and doubled up to 3
    times otherwise); ``scale_lo`` is assumed to fail (verified as well —
    if it succeeds, it is returned directly as an upper bound).

    ``policy`` / ``wrap_source`` opt the trial loops into the fault-tolerant
    runner path (see :func:`repro.experiments.runner.success_probability`);
    ``workers`` fans each evaluation's trials out over worker processes.
    The bisection itself is inherently sequential (each step depends on the
    last verdict), so only the per-evaluation trial loops parallelise —
    results are bit-identical to a serial run at any worker count.
    """
    if not 0.5 < target_rate <= 1.0:
        raise ValueError(f"target rate must be in (0.5, 1], got {target_rate}")
    if scale_lo <= 0 or scale_hi <= scale_lo:
        raise ValueError("need 0 < scale_lo < scale_hi")
    gen = ensure_rng(rng)
    evaluations = 0

    ok_lo, samples_lo = _succeeds(
        family, scale_lo, complete, far, trials, target_rate, gen, policy,
        wrap_source, workers, trace,
    )
    evaluations += 1
    if ok_lo:
        return ComplexityEstimate(samples_lo, scale_lo, 0.0, evaluations, target_rate)

    hi = scale_hi
    ok_hi, samples_hi = _succeeds(
        family, hi, complete, far, trials, target_rate, gen, policy,
        wrap_source, workers, trace,
    )
    evaluations += 1
    doublings = 0
    while not ok_hi and doublings < 3:
        hi *= 4.0
        ok_hi, samples_hi = _succeeds(
            family, hi, complete, far, trials, target_rate, gen, policy,
            wrap_source, workers, trace,
        )
        evaluations += 1
        doublings += 1
    if not ok_hi:
        raise RuntimeError(
            f"tester failed even at budget scale {hi}: widen scale_hi or fix the tester"
        )

    lo = scale_lo
    best_scale, best_samples = hi, samples_hi
    for _ in range(bisection_steps):
        mid = math.exp(0.5 * (math.log(lo) + math.log(hi)))
        ok, samples = _succeeds(
            family, mid, complete, far, trials, target_rate, gen, policy,
            wrap_source, workers, trace,
        )
        evaluations += 1
        if ok:
            hi, best_scale, best_samples = mid, mid, samples
        else:
            lo = mid
    return ComplexityEstimate(
        samples=best_samples,
        scale=best_scale,
        scale_low=lo,
        evaluations=evaluations,
        target_rate=target_rate,
    )
