"""Parameter sweeps of empirical sample complexity.

The scaling experiments (E4–E6) all do the same thing: fix two of
``(n, k, ε)``, sweep the third, and measure the empirical sample complexity
at each point via the bisection of
:mod:`repro.experiments.estimate`.  This module is that loop as a reusable
API, including the power-law fit used to summarise a sweep's shape.
"""

from __future__ import annotations

import math
import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.backends import DEFAULT_BACKEND, validate_backend
from repro.core.closeness import test_closeness
from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.experiments.estimate import ComplexityEstimate, empirical_sample_complexity
from repro.kernels import validate_kernel
from repro.observability.trace import NULL_TRACER, Tracer
from repro.robustness.checkpoint import CheckpointStore, load_if_matching, resolve_store
from repro.robustness.resilience import TrialPolicy
from repro.util.rng import RandomState, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class SweepPoint:
    """One point of a complexity sweep."""

    n: int
    k: int
    eps: float
    estimate: ComplexityEstimate


@dataclass(frozen=True)
class SweepResult:
    """A full sweep plus its fitted power-law exponent."""

    axis: str
    points: list[SweepPoint]
    exponent: float  # slope of log(samples) vs log(axis value)
    #: Optional per-point ground-truth labels (``label_ground_truth=True``):
    #: one ``{"complete": {...}, "far": {...}}`` entry per point with the
    #: certified ``(lower, upper)`` dTV(·, H_k) bounds of each instance.
    #: Never checkpointed — recomputed (memoized) on every run.
    ground_truth: "list[dict[str, dict[str, float]]] | None" = None

    def axis_values(self) -> list[float]:
        return [getattr(p, self.axis) for p in self.points]

    def samples(self) -> list[float]:
        return [p.estimate.samples for p in self.points]


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    lx, ly = np.log(np.asarray(xs, dtype=float)), np.log(np.asarray(ys, dtype=float))
    slope = float(np.polyfit(lx, ly, 1)[0])
    return slope


@dataclass(frozen=True)
class StaircaseWorkload:
    """Picklable completeness factory: the (n, k) staircase histogram."""

    n: int
    k: int

    def __call__(self, gen: np.random.Generator) -> DiscreteDistribution:
        return families.staircase(self.n, self.k).to_distribution()


@dataclass(frozen=True)
class FarFromHkWorkload:
    """Picklable soundness factory: a certified ε-far sawtooth instance."""

    n: int
    k: int
    eps: float

    def __call__(self, gen: np.random.Generator) -> DiscreteDistribution:
        return families.far_from_hk(self.n, self.k, self.eps, gen)


@dataclass(frozen=True)
class HistogramTester:
    """Picklable tester: one backend at a fixed budget scale.

    Module-level (not a closure) so the process backend of
    :mod:`repro.parallel` can ship it to workers.
    """

    k: int
    eps: float
    config: TesterConfig
    backend: str = DEFAULT_BACKEND
    kernel: str = "auto"

    #: Advertises the ``trace=`` keyword to the trial runner (see
    #: :data:`repro.experiments.runner.Tester`); a class attribute, so the
    #: dataclass stays picklable with unchanged fields.
    supports_trace = True

    def __call__(self, source, trace: Tracer = NULL_TRACER) -> bool:
        return test_histogram(
            source,
            self.k,
            self.eps,
            config=self.config,
            backend=self.backend,
            kernel=self.kernel,
            trace=trace,
        ).accept


@dataclass(frozen=True)
class HistogramTesterFamily:
    """Picklable tester family indexed by budget scale (bisection knob)."""

    k: int
    eps: float
    config: TesterConfig
    backend: str = DEFAULT_BACKEND
    kernel: str = "auto"

    def __call__(self, scale: float) -> HistogramTester:
        return HistogramTester(
            self.k, self.eps, self.config.scaled(scale), self.backend, self.kernel
        )


@dataclass(frozen=True)
class PairedClosenessTester:
    """Picklable two-sample tester at a fixed budget scale.

    Judges a :class:`~repro.distributions.sampling.PairedSampleSource` (the
    trial runner builds one whenever a workload factory returns a ``(p, q)``
    tuple).  There is no backend knob: the DKN17 reduction has a single
    implementation on the shared substrate.
    """

    k: int
    eps: float
    config: TesterConfig
    kernel: str = "auto"

    supports_trace = True

    def __call__(self, pair, trace: Tracer = NULL_TRACER) -> bool:
        return test_closeness(
            pair,
            k=self.k,
            eps=self.eps,
            config=self.config,
            kernel=self.kernel,
            trace=trace,
        ).accept


@dataclass(frozen=True)
class ClosenessTesterFamily:
    """Picklable closeness tester family indexed by budget scale."""

    k: int
    eps: float
    config: TesterConfig
    kernel: str = "auto"

    def __call__(self, scale: float) -> PairedClosenessTester:
        return PairedClosenessTester(
            self.k, self.eps, self.config.scaled(scale), self.kernel
        )


def _default_workloads(
    n: int, k: int, eps: float
) -> tuple[Callable, Callable]:
    return StaircaseWorkload(n, k), FarFromHkWorkload(n, k, eps)


def _default_paired_workloads(
    n: int, k: int, eps: float
) -> tuple[Callable, Callable]:
    """Default closeness sides: identical staircases / exact-ε shifted pair."""
    from repro.experiments.workloads import BoundPairedWorkload

    return (
        BoundPairedWorkload("identical-staircase", n, k, eps),
        BoundPairedWorkload("shifted-staircase", n, k, eps),
    )


#: Seed-stream tag for ground-truth labelling generators.  Labels get their
#: own deterministic streams (tag + point index) so turning them on never
#: consumes from — or reorders — the per-point trial streams, keeping
#: labelled sweeps byte-identical to unlabelled ones.
_LABEL_STREAM_TAG = 0x6C61_62656C  # b"label"


def _label_point(
    point: SweepPoint,
    make_workloads: Callable[[int, int, float], tuple[Callable, Callable]],
    index: int,
    task: str = "identity",
) -> dict[str, dict[str, float]]:
    """Ground-truth labels for one instance of each workload side.

    Identity sweeps label each side with certified ``dTV(·, H_k)`` bounds;
    closeness sweeps label each pair with its exact ``dTV(p, q)`` (the pair
    distance is closed-form, so lower = upper).
    """
    from repro.experiments.workloads import ground_truth_bounds, pair_ground_truth

    complete, far = make_workloads(point.n, point.k, point.eps)
    labels: dict[str, dict[str, float]] = {}
    for side, factory in (("complete", complete), ("far", far)):
        gen = np.random.default_rng([_LABEL_STREAM_TAG, index])
        if task == "closeness":
            tv = pair_ground_truth(*factory(gen))
            labels[side] = {"lower": tv, "upper": tv}
        else:
            lower, upper = ground_truth_bounds(factory(gen), point.k)
            labels[side] = {"lower": lower, "upper": upper}
    return labels


def sweep_fingerprint(
    axis: str,
    values: Sequence[float],
    *,
    n: int,
    k: int,
    eps: float,
    trials: int,
    bisection_steps: int,
    config: TesterConfig,
    backend: str,
    seed: int,
    task: str = "identity",
) -> dict[str, Any]:
    """The canonical parameter fingerprint of a sweep.

    Shared between :func:`complexity_sweep` checkpoints and the distributed
    results store (:mod:`repro.distributed`), so a sqlite store and a JSON
    checkpoint of the same sweep agree byte-for-byte on identity.  Neither
    the worker count nor the kernel ever enters the fingerprint: results
    are bit-identical at any count and under any kernel, so a checkpoint
    must resume across machines with different parallelism or native
    extras.  The backend *does* enter: it changes budgets and verdicts.

    ``task`` ("identity" | "closeness") is likewise fingerprint-bearing:
    identity and closeness sweeps draw different streams and measure
    different testers, so a checkpoint or results-store shard of one must
    never be spliced into the other even when every numeric knob matches.
    """
    if task not in ("identity", "closeness"):
        raise ValueError(f"task must be 'identity' or 'closeness', got {task!r}")
    config_print = asdict(config)
    config_print.pop("workers", None)
    return {
        "task": task,
        "axis": axis,
        "values": [float(v) for v in values],
        "n": n,
        "k": k,
        "eps": eps,
        "trials": trials,
        "bisection_steps": bisection_steps,
        "config": config_print,
        "backend": backend,
        "seed": seed,
    }


#: Exactly the keys a serialised :class:`SweepPoint` may carry.
_POINT_KEYS = frozenset({"n", "k", "eps", "estimate"})
_ESTIMATE_KEYS = frozenset(ComplexityEstimate.__dataclass_fields__)


def _point_to_json(point: SweepPoint) -> dict[str, Any]:
    return {
        "n": point.n,
        "k": point.k,
        "eps": point.eps,
        "estimate": asdict(point.estimate),
    }


def _point_from_json(data: dict[str, Any]) -> SweepPoint:
    """Rebuild a :class:`SweepPoint`, rejecting malformed checkpoints.

    Unknown keys mean the checkpoint was written by a different (or
    tampered) schema; splicing it in silently could corrupt a resumed
    sweep, so fail loudly instead.
    """
    if not isinstance(data, dict):
        raise ValueError(f"sweep point must be an object, got {type(data).__name__}")
    extra = set(data) - _POINT_KEYS
    missing = _POINT_KEYS - set(data)
    if extra or missing:
        raise ValueError(
            f"malformed sweep point: unknown keys {sorted(extra)}, "
            f"missing keys {sorted(missing)}"
        )
    estimate = data["estimate"]
    if not isinstance(estimate, dict):
        raise ValueError("sweep point 'estimate' must be an object")
    if set(estimate) != _ESTIMATE_KEYS:
        raise ValueError(
            "malformed complexity estimate: unknown keys "
            f"{sorted(set(estimate) - _ESTIMATE_KEYS)}, missing keys "
            f"{sorted(_ESTIMATE_KEYS - set(estimate))}"
        )
    return SweepPoint(
        n=int(data["n"]),
        k=int(data["k"]),
        eps=float(data["eps"]),
        estimate=ComplexityEstimate(**estimate),
    )


def complexity_sweep(
    axis: str,
    values: Sequence[float],
    *,
    n: int = 4000,
    k: int = 4,
    eps: float = 0.3,
    config: TesterConfig | None = None,
    trials: int = 9,
    bisection_steps: int = 5,
    workloads: Callable[[int, int, float], tuple[Callable, Callable]] | None = None,
    rng: RandomState = None,
    checkpoint: "str | os.PathLike | CheckpointStore | None" = None,
    resume: bool = True,
    policy: TrialPolicy | None = None,
    workers: int | None = None,
    backend: str = DEFAULT_BACKEND,
    kernel: str = "auto",
    task: str = "identity",
    label_ground_truth: bool = False,
    trace: Tracer = NULL_TRACER,
) -> SweepResult:
    """Sweep one axis (``"n"``, ``"k"`` or ``"eps"``) of the tester's
    empirical sample complexity; other parameters stay fixed.

    ``task`` selects the tester under measurement: ``"identity"`` (the
    default — Algorithm 1's one-sample membership tester) or
    ``"closeness"`` (the two-sample DKN17 tester; workload factories then
    return ``(p, q)`` pairs and the "complete"/"far" sides become
    "p = q" / "dTV(p, q) ≥ ε").  The task is part of the checkpoint
    fingerprint, so identity and closeness checkpoints never cross-resume.

    ``workloads(n, k, eps) -> (complete_factory, far_factory)`` customises
    the instances (defaults: staircase / certified sawtooth for identity;
    identical-staircase / shifted-staircase pairs for closeness).

    ``checkpoint`` names a JSON file the sweep saves atomically after every
    completed point; with ``resume=True`` (the default) an existing
    checkpoint whose parameter fingerprint matches is continued point-by-
    point — per-point RNG streams are spawned identically on every run, so
    a resumed sweep reproduces the uninterrupted result exactly.  With
    ``resume=False`` any existing checkpoint is discarded first.
    Checkpointing requires a reproducible integer seed for ``rng``.

    ``policy`` opts every trial loop into fault isolation (see
    :class:`~repro.robustness.resilience.TrialPolicy`).

    ``workers`` (default: ``config.workers``) fans each evaluation's trial
    loop out over worker processes.  Results and checkpoints are
    **worker-count independent** — per-point and per-trial seed streams are
    derived before any work is scheduled — so the fingerprint deliberately
    excludes the worker count and a checkpoint written at one worker count
    resumes correctly at any other.

    ``backend`` selects the tester backend ("pods16" | "cdkl22").  Unlike
    the worker count it changes measured budgets and (on marginal inputs)
    verdicts, so it **is** part of the checkpoint fingerprint: a
    checkpoint written under one backend never resumes under the other.

    ``kernel`` selects the compute kernels ("auto" | "python" | "numba").
    Like the worker count it is an execution knob — every kernel pair is
    bit-identical — so it is deliberately **excluded** from the checkpoint
    fingerprint: a sweep checkpointed under one kernel resumes under any
    other.

    ``label_ground_truth`` additionally computes certified
    ``dTV(·, H_k)`` bounds for one representative complete/far instance per
    sweep point (memoized via
    :func:`repro.experiments.workloads.ground_truth_bounds`).  Labels ride
    on :attr:`SweepResult.ground_truth` only: they use their own fixed seed
    stream, never enter checkpoints, and leave the parameter fingerprint
    and per-point trial streams untouched, so labelled and unlabelled runs
    of the same sweep are byte-identical point for point.

    ``trace`` (default: no-op) records one span per sweep point, per
    bisection evaluation, and per trial; trial sub-traces are assembled in
    trial order, so the stream is byte-identical across worker counts
    (after stripping wall-clock fields).  Resumed points are not re-traced.
    """
    if axis not in ("n", "k", "eps"):
        raise ValueError(f"axis must be one of n/k/eps, got {axis!r}")
    if not values:
        raise ValueError("need at least one axis value")
    if task not in ("identity", "closeness"):
        raise ValueError(f"task must be 'identity' or 'closeness', got {task!r}")
    if config is None:
        config = TesterConfig.practical()
    if workers is None:
        workers = config.workers
    validate_backend(backend)
    validate_kernel(kernel)
    default_workloads = (
        _default_paired_workloads if task == "closeness" else _default_workloads
    )
    make_workloads = workloads if workloads is not None else default_workloads

    store = resolve_store(checkpoint)
    done: list[SweepPoint] = []
    fingerprint: dict[str, Any] = {}
    if store is not None:
        if not isinstance(rng, int):
            raise ValueError(
                "checkpointing requires an integer seed for rng — a resumed "
                "sweep must replay the exact per-point streams"
            )
        fingerprint = sweep_fingerprint(
            axis,
            values,
            n=n,
            k=k,
            eps=eps,
            trials=trials,
            bisection_steps=bisection_steps,
            config=config,
            backend=backend,
            seed=rng,
            task=task,
        )
        if resume:
            state = load_if_matching(store, fingerprint)
            if state is not None:
                done = [_point_from_json(d) for d in state.get("points", [])]
        else:
            store.clear()

    streams = spawn_rngs(rng, len(values))
    points: list[SweepPoint] = list(done[: len(values)])
    for index in range(len(points), len(values)):
        value, stream = values[index], streams[index]
        cur_n, cur_k, cur_eps = n, k, eps
        if axis == "n":
            cur_n = int(value)
        elif axis == "k":
            cur_k = int(value)
        else:
            cur_eps = float(value)
        complete, far = make_workloads(cur_n, cur_k, cur_eps)
        if task == "closeness":
            family = ClosenessTesterFamily(cur_k, cur_eps, config, kernel)
        else:
            family = HistogramTesterFamily(cur_k, cur_eps, config, backend, kernel)
        with trace.span(
            "point", axis=axis, value=float(value), n=cur_n, k=cur_k, eps=cur_eps
        ):
            estimate = empirical_sample_complexity(
                family,
                complete=complete,
                far=far,
                trials=trials,
                bisection_steps=bisection_steps,
                rng=stream,
                policy=policy,
                workers=workers,
                trace=trace,
            )
        points.append(SweepPoint(n=cur_n, k=cur_k, eps=cur_eps, estimate=estimate))
        if store is not None:
            store.save(
                {
                    "fingerprint": fingerprint,
                    "points": [_point_to_json(p) for p in points],
                }
            )

    ground_truth = None
    if label_ground_truth:
        ground_truth = [
            _label_point(point, make_workloads, index, task)
            for index, point in enumerate(points)
        ]

    xs = [float(getattr(p, axis)) for p in points]
    ys = [p.estimate.samples for p in points]
    exponent = fit_power_law(xs, ys) if len(points) >= 2 else math.nan
    return SweepResult(
        axis=axis, points=points, exponent=exponent, ground_truth=ground_truth
    )
