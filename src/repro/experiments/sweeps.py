"""Parameter sweeps of empirical sample complexity.

The scaling experiments (E4–E6) all do the same thing: fix two of
``(n, k, ε)``, sweep the third, and measure the empirical sample complexity
at each point via the bisection of
:mod:`repro.experiments.estimate`.  This module is that loop as a reusable
API, including the power-law fit used to summarise a sweep's shape.
"""

from __future__ import annotations

import math
import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.experiments.estimate import ComplexityEstimate, empirical_sample_complexity
from repro.robustness.checkpoint import CheckpointStore, load_if_matching, resolve_store
from repro.robustness.resilience import TrialPolicy
from repro.util.rng import RandomState, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class SweepPoint:
    """One point of a complexity sweep."""

    n: int
    k: int
    eps: float
    estimate: ComplexityEstimate


@dataclass(frozen=True)
class SweepResult:
    """A full sweep plus its fitted power-law exponent."""

    axis: str
    points: list[SweepPoint]
    exponent: float  # slope of log(samples) vs log(axis value)

    def axis_values(self) -> list[float]:
        return [getattr(p, self.axis) for p in self.points]

    def samples(self) -> list[float]:
        return [p.estimate.samples for p in self.points]


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    lx, ly = np.log(np.asarray(xs, dtype=float)), np.log(np.asarray(ys, dtype=float))
    slope = float(np.polyfit(lx, ly, 1)[0])
    return slope


def _default_workloads(
    n: int, k: int, eps: float
) -> tuple[Callable, Callable]:
    complete = lambda g: families.staircase(n, k).to_distribution()
    far = lambda g: families.far_from_hk(n, k, eps, g)
    return complete, far


def _point_to_json(point: SweepPoint) -> dict[str, Any]:
    return {
        "n": point.n,
        "k": point.k,
        "eps": point.eps,
        "estimate": asdict(point.estimate),
    }


def _point_from_json(data: dict[str, Any]) -> SweepPoint:
    return SweepPoint(
        n=int(data["n"]),
        k=int(data["k"]),
        eps=float(data["eps"]),
        estimate=ComplexityEstimate(**data["estimate"]),
    )


def complexity_sweep(
    axis: str,
    values: Sequence[float],
    *,
    n: int = 4000,
    k: int = 4,
    eps: float = 0.3,
    config: TesterConfig | None = None,
    trials: int = 9,
    bisection_steps: int = 5,
    workloads: Callable[[int, int, float], tuple[Callable, Callable]] | None = None,
    rng: RandomState = None,
    checkpoint: "str | os.PathLike | CheckpointStore | None" = None,
    resume: bool = True,
    policy: TrialPolicy | None = None,
) -> SweepResult:
    """Sweep one axis (``"n"``, ``"k"`` or ``"eps"``) of the tester's
    empirical sample complexity; other parameters stay fixed.

    ``workloads(n, k, eps) -> (complete_factory, far_factory)`` customises
    the instances (defaults: staircase / certified sawtooth).

    ``checkpoint`` names a JSON file the sweep saves atomically after every
    completed point; with ``resume=True`` (the default) an existing
    checkpoint whose parameter fingerprint matches is continued point-by-
    point — per-point RNG streams are spawned identically on every run, so
    a resumed sweep reproduces the uninterrupted result exactly.  With
    ``resume=False`` any existing checkpoint is discarded first.
    Checkpointing requires a reproducible integer seed for ``rng``.

    ``policy`` opts every trial loop into fault isolation (see
    :class:`~repro.robustness.resilience.TrialPolicy`).
    """
    if axis not in ("n", "k", "eps"):
        raise ValueError(f"axis must be one of n/k/eps, got {axis!r}")
    if not values:
        raise ValueError("need at least one axis value")
    if config is None:
        config = TesterConfig.practical()
    make_workloads = workloads if workloads is not None else _default_workloads

    store = resolve_store(checkpoint)
    done: list[SweepPoint] = []
    fingerprint: dict[str, Any] = {}
    if store is not None:
        if not isinstance(rng, int):
            raise ValueError(
                "checkpointing requires an integer seed for rng — a resumed "
                "sweep must replay the exact per-point streams"
            )
        fingerprint = {
            "axis": axis,
            "values": [float(v) for v in values],
            "n": n,
            "k": k,
            "eps": eps,
            "trials": trials,
            "bisection_steps": bisection_steps,
            "config": asdict(config),
            "seed": rng,
        }
        if resume:
            state = load_if_matching(store, fingerprint)
            if state is not None:
                done = [_point_from_json(d) for d in state.get("points", [])]
        else:
            store.clear()

    streams = spawn_rngs(rng, len(values))
    points: list[SweepPoint] = list(done[: len(values)])
    for index in range(len(points), len(values)):
        value, stream = values[index], streams[index]
        cur_n, cur_k, cur_eps = n, k, eps
        if axis == "n":
            cur_n = int(value)
        elif axis == "k":
            cur_k = int(value)
        else:
            cur_eps = float(value)
        complete, far = make_workloads(cur_n, cur_k, cur_eps)
        family = lambda scale, cur_k=cur_k, cur_eps=cur_eps: (
            lambda src: test_histogram(
                src, cur_k, cur_eps, config=config.scaled(scale)
            ).accept
        )
        estimate = empirical_sample_complexity(
            family,
            complete=complete,
            far=far,
            trials=trials,
            bisection_steps=bisection_steps,
            rng=stream,
            policy=policy,
        )
        points.append(SweepPoint(n=cur_n, k=cur_k, eps=cur_eps, estimate=estimate))
        if store is not None:
            store.save(
                {
                    "fingerprint": fingerprint,
                    "points": [_point_to_json(p) for p in points],
                }
            )

    xs = [float(getattr(p, axis)) for p in points]
    ys = [p.estimate.samples for p in points]
    exponent = fit_power_law(xs, ys) if len(points) >= 2 else math.nan
    return SweepResult(axis=axis, points=points, exponent=exponent)
