"""Statistical helpers shared across the library.

Mostly small, exact tail-bound computations used to (a) size trial counts in
the statistical test-suite so flake probabilities are provably negligible,
and (b) implement the standard median-amplification trick the paper invokes
("repeating the test and taking the median value").
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np


def binomial_tail_below(n: int, p: float, k: int) -> float:
    """``P[Bin(n, p) <= k]`` computed in log-space (exact, no scipy needed)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    if p == 0.0:
        return 1.0
    if p == 1.0:
        return 0.0
    log_p, log_q = math.log(p), math.log1p(-p)
    total = 0.0
    for i in range(k + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * log_p
            + (n - i) * log_q
        )
        total += math.exp(log_term)
    return min(total, 1.0)


def binomial_tail_above(n: int, p: float, k: int) -> float:
    """``P[Bin(n, p) >= k]``."""
    if k <= 0:
        return 1.0
    return max(0.0, 1.0 - binomial_tail_below(n, p, k - 1))


def chernoff_flake_bound(trials: int, success_p: float, threshold: float) -> float:
    """Probability a ``success_p``-coin, flipped ``trials`` times, yields an
    empirical rate on the wrong side of ``threshold``.

    Used by the statistical tests to document their flake probability: when
    a tester guarantees success probability ``success_p`` and the test
    asserts the empirical rate clears ``threshold``, this is the chance the
    assertion fails even though the implementation is correct.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    cutoff = math.floor(threshold * trials)
    if success_p >= threshold:
        return binomial_tail_below(trials, success_p, cutoff)
    return binomial_tail_above(trials, success_p, cutoff + 1)


def amplification_repeats(delta: float, base_success: float = 2.0 / 3.0) -> int:
    """Number of independent repetitions so a majority vote errs w.p. <= delta.

    Standard Chernoff-based amplification: a test with success probability
    ``base_success > 1/2``, repeated ``r`` times with a majority vote, fails
    with probability ``exp(-2 r (base_success - 1/2)^2)``.  Returns the
    smallest odd ``r`` meeting the target (odd avoids ties).
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if not 0.5 < base_success <= 1.0:
        raise ValueError(f"base success must exceed 1/2, got {base_success}")
    gap = base_success - 0.5
    r = max(1, math.ceil(math.log(1.0 / delta) / (2.0 * gap * gap)))
    return r if r % 2 == 1 else r + 1


def majority(verdicts: Sequence[bool]) -> bool:
    """Strict majority vote (ties count as rejection)."""
    votes = list(verdicts)
    if not votes:
        raise ValueError("cannot take a majority of zero verdicts")
    return sum(votes) * 2 > len(votes)


def median_of_repeats(draw: Callable[[], float], repeats: int) -> float:
    """Median of ``repeats`` calls to ``draw`` (the paper's amplification)."""
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    return float(np.median([draw() for _ in range(repeats)]))


def wilson_interval(successes: int, trials: int, z: float = 2.576) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion (default 99%)."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


def poisson_tail_factor(mean: float, delta: float) -> float:
    """A sample count ``m'`` such that ``Poisson(m') >= mean`` w.p. >= 1-delta.

    Used when converting Poissonized sample budgets back to fixed budgets:
    drawing ``m'`` samples guarantees at least ``mean`` with high probability
    (Poisson lower-tail Chernoff bound, solved numerically).
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    # P[Poisson(lam) <= mean] <= exp(-(lam - mean)^2 / (2 lam)) for lam > mean.
    lam = mean
    target = 2.0 * math.log(1.0 / delta)
    while (lam - mean) ** 2 / lam < target:
        lam *= 1.05
    return lam
