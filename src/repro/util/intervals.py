"""Interval algebra over the discrete domain ``{0, …, n-1}``.

The paper works over ``[n] = {1, …, n}``; this library uses 0-indexed
half-open intervals ``[start, stop)`` throughout, which matches both numpy
slicing and the usual Python convention.  A :class:`Partition` is an ordered
sequence of contiguous intervals covering the whole domain — the object
``APPROXPART`` produces and every later stage of Algorithm 1 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True, order=True)
class Interval:
    """Half-open integer interval ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid interval [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, i: object) -> bool:
        if not isinstance(i, (int, np.integer)):
            return False
        return self.start <= int(i) < self.stop

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.stop))

    @property
    def is_singleton(self) -> bool:
        """True when the interval contains exactly one domain element."""
        return len(self) == 1

    def slice(self) -> slice:
        """The numpy slice selecting this interval from a length-n array."""
        return slice(self.start, self.stop)

    def intersects(self, other: "Interval") -> bool:
        return max(self.start, other.start) < min(self.stop, other.stop)


class Partition:
    """An ordered partition of ``{0, …, n-1}`` into contiguous intervals.

    Stored as a boundary array ``b_0 = 0 < b_1 < … < b_K = n``; interval
    ``j`` is ``[b_j, b_{j+1})``.  Provides O(log K) point location and
    vectorised per-interval aggregation of length-n arrays.
    """

    __slots__ = ("_boundaries",)

    def __init__(self, boundaries: Sequence[int]) -> None:
        bounds = np.asarray(boundaries, dtype=np.int64)
        if bounds.ndim != 1 or len(bounds) < 2:
            raise ValueError("a partition needs at least two boundaries")
        if bounds[0] != 0:
            raise ValueError(f"partition must start at 0, got {bounds[0]}")
        if np.any(np.diff(bounds) <= 0):
            raise ValueError("partition boundaries must be strictly increasing")
        self._boundaries = bounds

    # -- constructors ------------------------------------------------------

    @classmethod
    def trivial(cls, n: int) -> "Partition":
        """The single-interval partition ``[0, n)``."""
        return cls([0, n])

    @classmethod
    def singletons(cls, n: int) -> "Partition":
        """The finest partition: every point its own interval."""
        return cls(np.arange(n + 1))

    @classmethod
    def equal_width(cls, n: int, pieces: int) -> "Partition":
        """Split ``[0, n)`` into ``pieces`` intervals of (near-)equal width."""
        if not 1 <= pieces <= n:
            raise ValueError(f"need 1 <= pieces <= n, got pieces={pieces}, n={n}")
        bounds = np.unique(np.linspace(0, n, pieces + 1).round().astype(np.int64))
        return cls(bounds)

    @classmethod
    def from_intervals(cls, intervals: Iterable[Interval]) -> "Partition":
        """Build from contiguous intervals (must tile the domain in order)."""
        ivs = list(intervals)
        if not ivs:
            raise ValueError("empty interval list")
        bounds = [ivs[0].start]
        for iv in ivs:
            if iv.start != bounds[-1]:
                raise ValueError(f"intervals not contiguous at {iv.start}")
            bounds.append(iv.stop)
        return cls(bounds)

    # -- basic accessors ---------------------------------------------------

    @property
    def n(self) -> int:
        """Size of the underlying domain."""
        return int(self._boundaries[-1])

    @property
    def boundaries(self) -> np.ndarray:
        """Read-only view of the boundary array (length ``K + 1``)."""
        view = self._boundaries.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return len(self._boundaries) - 1

    def __getitem__(self, j: int) -> Interval:
        if not -len(self) <= j < len(self):
            raise IndexError(j)
        j %= len(self)
        return Interval(int(self._boundaries[j]), int(self._boundaries[j + 1]))

    def __iter__(self) -> Iterator[Interval]:
        for j in range(len(self)):
            yield self[j]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self._boundaries, other._boundaries)

    def __hash__(self) -> int:
        return hash(self._boundaries.tobytes())

    def __repr__(self) -> str:
        return f"Partition(n={self.n}, intervals={len(self)})"

    def lengths(self) -> np.ndarray:
        """Length of each interval, shape ``(K,)``."""
        return np.diff(self._boundaries)

    def locate(self, i: int) -> int:
        """Index of the interval containing domain point ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(f"point {i} outside domain [0, {self.n})")
        return int(np.searchsorted(self._boundaries, i, side="right") - 1)

    def membership(self) -> np.ndarray:
        """Array of length ``n`` mapping each point to its interval index."""
        labels = np.zeros(self.n, dtype=np.int64)
        labels[self._boundaries[1:-1]] = 1
        return np.cumsum(labels)

    # -- aggregation -------------------------------------------------------

    def aggregate(self, values: np.ndarray) -> np.ndarray:
        """Sum a length-``n`` array within each interval → shape ``(K,)``."""
        values = np.asarray(values)
        if values.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {values.shape}")
        sums = np.add.reduceat(values, self._boundaries[:-1])
        return sums

    def flatten(self, values: np.ndarray) -> np.ndarray:
        """Replace values within each interval by the interval average.

        This is the paper's flattening map: the closest (in the relevant
        metrics) function constant on each piece with the same per-piece mass.
        """
        sums = self.aggregate(values)
        return np.repeat(sums / self.lengths(), self.lengths())

    # -- structural operations --------------------------------------------

    def refine(self, other: "Partition") -> "Partition":
        """Common refinement of two partitions of the same domain."""
        if other.n != self.n:
            raise ValueError("partitions cover different domains")
        merged = np.union1d(self._boundaries, other._boundaries)
        return Partition(merged)

    def is_refinement_of(self, coarser: "Partition") -> bool:
        """True when every boundary of ``coarser`` is a boundary of ``self``."""
        if coarser.n != self.n:
            return False
        return bool(np.isin(coarser._boundaries, self._boundaries).all())

    def restrict_mask(self, keep: Sequence[int]) -> np.ndarray:
        """Boolean domain mask selecting the union of intervals in ``keep``."""
        mask = np.zeros(self.n, dtype=bool)
        for j in keep:
            mask[self[j].slice()] = True
        return mask


def cover(indices: Iterable[int], n: int | None = None) -> int:
    """Number of maximal runs of consecutive integers in ``indices``.

    This is the paper's ``cover(S)`` (Lemma 4.4): the minimum number of
    disjoint intervals needed to cover ``S``.  ``n`` is accepted only for
    interface symmetry and bounds checking.
    """
    pts = np.unique(np.fromiter(indices, dtype=np.int64))
    if len(pts) == 0:
        return 0
    if pts[0] < 0 or (n is not None and pts[-1] >= n):
        raise ValueError("indices outside the domain")
    return int(1 + np.count_nonzero(np.diff(pts) > 1))


def runs(indices: Iterable[int]) -> list[Interval]:
    """The maximal runs themselves, as a list of intervals."""
    pts = np.unique(np.fromiter(indices, dtype=np.int64))
    if len(pts) == 0:
        return []
    breaks = np.flatnonzero(np.diff(pts) > 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [len(pts) - 1]))
    return [Interval(int(pts[a]), int(pts[b]) + 1) for a, b in zip(starts, stops)]
