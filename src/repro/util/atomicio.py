"""Atomic, durable file writes shared by every artifact writer.

Sweep checkpoints have always used the write-to-temp → fsync → ``os.replace``
→ directory-fsync dance; benchmark tables, service reports, and trace JSONL
exports used to cut corners (plain ``write_text`` + rename, no fsync), so a
crash mid-write could leave a torn ``BENCH_*.json`` or report behind the
rename, or lose the new directory entry entirely on power loss.  This module
is the one implementation everybody routes through:

* the temp file lives in the *target's* directory, so ``os.replace`` stays
  on one filesystem (rename atomicity);
* the temp file's contents are fsynced before the rename (a reordered
  rename must never expose unwritten data blocks);
* the containing directory's entry table is fsynced after the rename (the
  new name itself must survive power loss).

A reader therefore observes either the previous complete file or the new
complete file — never a prefix, never an empty placeholder.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def fsync_directory(directory: "str | os.PathLike") -> None:
    """Flush a directory's entry table to stable storage (best effort).

    Some platforms/filesystems refuse directory fds or directory fsync;
    durability is then no worse than before, so failures are swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: "str | os.PathLike", text: str) -> Path:
    """Atomically and durably replace ``path``'s contents with ``text``.

    Parent directories are created as needed.  On any failure the temp file
    is removed and the original file (if any) is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        fsync_directory(target.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise
    return target


def atomic_write_json(
    path: "str | os.PathLike",
    payload: Any,
    *,
    indent: "int | None" = 2,
    sort_keys: bool = False,
    trailing_newline: bool = True,
) -> Path:
    """JSON-serialise ``payload`` and :func:`atomic_write_text` it."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    return atomic_write_text(path, text)
