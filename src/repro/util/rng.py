"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``rng`` argument that
may be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Internally everything is normalised to a
``Generator`` through :func:`ensure_rng`, and independent sub-streams are
derived with :func:`spawn_rngs` so that repeated subroutine calls never share
a stream by accident (the paper's analysis repeatedly relies on statistics
being computed from *fresh* samples).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything accepted where a source of randomness is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RandomState = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` draws fresh OS entropy; an ``int`` or ``SeedSequence`` seeds a
    new PCG64 generator; an existing ``Generator`` is returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn_rngs(rng: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``rng``.

    Uses the generator's own bit stream to seed children, so the parent
    advances deterministically and results are reproducible given a seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def child_rng(rng: RandomState) -> np.random.Generator:
    """Derive a single independent generator from ``rng``."""
    return spawn_rngs(rng, 1)[0]


def seeds_for_trials(rng: RandomState, trials: int) -> Sequence[int]:
    """Return ``trials`` reproducible integer seeds (for per-trial reporting)."""
    parent = ensure_rng(rng)
    return [int(s) for s in parent.integers(0, 2**63 - 1, size=trials, dtype=np.int64)]


def seed_sequence_root(rng: RandomState) -> np.random.SeedSequence:
    """Normalise ``rng`` into a :class:`numpy.random.SeedSequence` root.

    An existing ``SeedSequence`` passes through; an integer seeds one
    directly; ``None`` draws fresh OS entropy; a ``Generator`` contributes
    entropy *from its own stream* (advancing it), so repeated calls on the
    same generator yield independent roots — mirroring :func:`spawn_rngs`.
    """
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(int(rng))
    gen = ensure_rng(rng)
    entropy = [int(x) for x in gen.integers(0, 2**63 - 1, size=4, dtype=np.int64)]
    return np.random.SeedSequence(entropy)


def spawn_seed_sequences(rng: RandomState, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` per-trial :class:`~numpy.random.SeedSequence`
    sub-streams via ``SeedSequence.spawn``.

    This is the parallel-safe counterpart of :func:`spawn_rngs`: the
    sub-streams are cheap to pickle across process boundaries, and —
    crucially — their derivation depends only on ``rng`` and ``count``,
    never on *where* each trial will execute.  A trial's generator is
    ``np.random.default_rng(seq)``; serial and parallel executions of the
    same trial list are therefore bit-identical at any worker count.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(seed_sequence_root(rng).spawn(count))
