"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``rng`` argument that
may be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Internally everything is normalised to a
``Generator`` through :func:`ensure_rng`, and independent sub-streams are
derived with :func:`spawn_rngs` so that repeated subroutine calls never share
a stream by accident (the paper's analysis repeatedly relies on statistics
being computed from *fresh* samples).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything accepted where a source of randomness is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RandomState = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` draws fresh OS entropy; an ``int`` or ``SeedSequence`` seeds a
    new PCG64 generator; an existing ``Generator`` is returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn_rngs(rng: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``rng``.

    Uses the generator's own bit stream to seed children, so the parent
    advances deterministically and results are reproducible given a seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def child_rng(rng: RandomState) -> np.random.Generator:
    """Derive a single independent generator from ``rng``."""
    return spawn_rngs(rng, 1)[0]


def seeds_for_trials(rng: RandomState, trials: int) -> Sequence[int]:
    """Return ``trials`` reproducible integer seeds (for per-trial reporting)."""
    parent = ensure_rng(rng)
    return [int(s) for s in parent.integers(0, 2**63 - 1, size=trials, dtype=np.int64)]
