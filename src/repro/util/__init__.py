"""Shared utilities: RNG plumbing, interval algebra, statistical helpers."""

from repro.util.intervals import Interval, Partition
from repro.util.rng import RandomState, ensure_rng, spawn_rngs

__all__ = ["Interval", "Partition", "RandomState", "ensure_rng", "spawn_rngs"]
