"""Legacy shim so `pip install -e .` works on environments without the
`wheel` package (PEP 660 editables need it; `setup.py develop` does not)."""

from setuptools import setup

setup()
