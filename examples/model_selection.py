"""Model selection: find the smallest k that summarises a column.

Section 1.1 of the paper describes the tester's killer app: run it inside a
doubling search to find the smallest number of histogram buckets that
captures a distribution to within ε, then hand that k to an agnostic
learner — "achieving an optimal tradeoff between accuracy and conciseness".

Run:  python examples/model_selection.py
"""

import numpy as np

from repro import families
from repro.distributions.distances import tv_distance
from repro.learning import select_k

N = 6_000
EPS = 0.3


def main() -> None:
    rng = np.random.default_rng(3)
    scenarios = {
        "uniform column": families.uniform(N),
        "4-band staircase": families.staircase(N, 4, ratio=3.0).to_distribution(),
        "16-piece random histogram": families.random_histogram(
            N, 16, rng, min_width=N // 64, concentration=3.0
        ).to_distribution(),
        "bimodal ages": families.discretized_gaussian_mixture(
            N, centers=[0.3, 0.75], widths=[0.04, 0.08]
        ),
    }
    for name, dist in scenarios.items():
        result = select_k(dist, EPS, k_max=256, repeats=3, rng=rng)
        err = tv_distance(dist, result.histogram.to_pmf())
        print(f"{name}:")
        print(f"  selected k = {result.k} "
              f"(tested {sorted(result.accepted_trace)} -> "
              f"{result.tests_run} tester calls, "
              f"{result.samples_used:,.0f} samples)")
        print(f"  learned {result.histogram.num_pieces}-piece summary, "
              f"TV error {err:.3f} (target {EPS})")
        print()
    print("note: property testing guarantees k within the eps-closeness "
          "regime, so the\nselected k can sit below the generative piece "
          "count when small pieces carry\nlittle mass - that is the "
          "optimal conciseness the paper's intro describes.")


if __name__ == "__main__":
    main()
