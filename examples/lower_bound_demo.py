"""The Section 4 lower bounds, demonstrated end to end.

Three short acts:

1. **Paninski's family** (Proposition 4.1): construct Q_eps, certify its
   distance from H_k in closed form, and trace how the best distinguisher's
   success rate climbs right around the Omega(sqrt(n)/eps^2) threshold.
2. **Lemma 4.4**: a random permutation keeps a small support "sprinkled" —
   Monte-Carlo the cover probability against the 7*l/n bound.
3. **The reduction** (Proposition 4.2): use the histogram tester as a
   black box to solve support-size estimation.

Run:  python examples/lower_bound_demo.py
"""

from repro import TesterConfig, test_histogram
from repro.experiments.report import format_series
from repro.lowerbounds import (
    cover_experiment,
    critical_sample_size,
    distinguishing_experiment,
    paninski_distance_lower_bound,
    paninski_instance,
    reduction_parameters,
    solve_suppsize_via_tester,
    suppsize_instance,
)

N, EPS = 4_000, 0.1


def act_one() -> None:
    print("=" * 60)
    print("1. Paninski family: the sqrt(n)/eps^2 wall")
    dist = paninski_instance(N, EPS, rng=0)
    print(f"   built Q_eps member on n={N}; certified distance from "
          f"H_64 >= {paninski_distance_lower_bound(N, EPS, 64):.3f}")
    critical = critical_sample_size(N, EPS)
    ms, rates = [], []
    for mult in (0.125, 0.25, 0.5, 1, 2, 4, 8):
        m = critical * mult
        result = distinguishing_experiment(N, EPS, m, trials=200, rng=1)
        ms.append(m)
        rates.append(result.success_rate)
    print(f"   critical scale sqrt(n)/(c^2 eps^2) = {critical:,.0f} samples")
    print("   distinguishing success vs sample size:")
    print(format_series(ms, rates))
    del dist


def act_two() -> None:
    print("=" * 60)
    print("2. Lemma 4.4: random permutations keep supports sprinkled")
    print(f"   {'l':>6} {'P[cover <= 6l/7]':>18} {'bound 7l/n':>12} {'mean cover':>11}")
    for ell in (20, 50, 100, 250):
        exp = cover_experiment(N, ell, trials=500, rng=2)
        print(f"   {ell:>6} {exp.empirical_probability:>18.3f} "
              f"{exp.lemma_bound:>12.3f} {exp.mean_cover:>11.1f}")


def act_three() -> None:
    print("=" * 60)
    print("3. Reduction: the histogram tester solves SUPPSIZE_m")
    config = TesterConfig.practical()

    def tester(source, k, eps):
        return test_histogram(source, k, eps, config=config).accept

    k = 15
    m, eps1 = reduction_parameters(k)
    n = 80 * m
    correct = 0
    trials = 6
    for seed in range(trials):
        small = seed % 2 == 0
        instance = suppsize_instance(m, small, rng=seed)
        guess_small = solve_suppsize_via_tester(instance, n, tester, rng=100 + seed)
        correct += guess_small == small
    print(f"   k={k} -> SUPPSIZE_{m} on n={n}, eps1={eps1:.4f}")
    print(f"   {correct}/{trials} instances decided correctly via the tester")


if __name__ == "__main__":
    act_one()
    act_two()
    act_three()
