"""Continuous data through the grid adapter (the Section 2 remark).

A latency-monitoring scenario: a service emits response times in [0, 1s).
The SRE wants to know whether the latency profile is "banded" — well
described by a few constant-rate regimes (a k-histogram at the monitoring
resolution) — or structurally messy, in which case percentile alerting on a
few bands would be misleading.

The paper's testers are defined over discrete domains; `GriddedSource`
makes them consume raw real-valued samples by gridding on the fly.

Run:  python examples/continuous_stream.py
"""

import numpy as np

from repro import TesterConfig, test_histogram
from repro.distributions.continuous import GriddedSource

GRID = 2048  # monitoring resolution: ~0.5ms cells over 1s
K = 6  # latency bands the dashboard would show
EPS = 0.25


def banded_latency(gen: np.random.Generator, m: int) -> np.ndarray:
    """Healthy service: three flat regimes (fast path, cache miss, retry)."""
    u = gen.random(m)
    fast = 0.05 + gen.random(m) * 0.10  # [50ms, 150ms)
    miss = 0.20 + gen.random(m) * 0.20  # [200ms, 400ms)
    retry = 0.70 + gen.random(m) * 0.25  # [700ms, 950ms)
    out = np.where(u < 0.70, fast, np.where(u < 0.95, miss, retry))
    return out


def oscillating_latency(gen: np.random.Generator, m: int) -> np.ndarray:
    """Pathological: a beat pattern from two interfering pollers — latency
    density alternates cell to cell (far from every coarse banding)."""
    cell = gen.integers(0, GRID // 2, size=m) * 2
    odd = gen.random(m) < 0.18
    return (cell + odd + gen.random(m)) / GRID


def main() -> None:
    config = TesterConfig.practical()
    for name, sampler in [("banded", banded_latency), ("oscillating", oscillating_latency)]:
        source = GriddedSource(sampler, GRID, rng=0)
        verdict = test_histogram(source, K, EPS, config=config)
        print(f"{name} latency profile:")
        print(f"  verdict : {'ACCEPT' if verdict.accept else 'REJECT'} "
              f"(stage {verdict.stage!r})")
        print(f"  reason  : {verdict.reason}")
        print(f"  samples : {verdict.samples_used:,.0f} latency observations\n")
    print("interpretation: the banded profile is safe to summarise with "
          f"{K} bands;\nthe oscillating one needs a finer representation — "
          "a percentile sketch, not bands.")


if __name__ == "__main__":
    main()
