"""Quickstart: test whether an unknown distribution is a k-histogram.

Run:  python examples/quickstart.py
"""

from repro import TesterConfig, families, test_histogram

N = 10_000  # domain size
K = 8  # histogram pieces being tested for
EPS = 0.25  # total-variation proximity parameter


def main() -> None:
    # A genuine 8-histogram: geometric "staircase" over 8 equal-width bands.
    staircase = families.staircase(N, K)
    verdict = test_histogram(staircase.to_distribution(), K, EPS, rng=0)
    print(f"staircase (true {K}-histogram):")
    print(f"  verdict : {'ACCEPT' if verdict.accept else 'REJECT'} at stage {verdict.stage!r}")
    print(f"  samples : {verdict.samples_used:,.0f}")
    print(f"  stages  : { {s: round(v) for s, v in verdict.stage_samples.items()} }")

    # An adversarial distribution certified to be EPS-far from every
    # 8-histogram (paired ±δ perturbation of uniform, Proposition 4.1 style).
    far = families.far_from_hk(N, K, EPS, rng=1)
    verdict = test_histogram(far, K, EPS, rng=2)
    print(f"\nsawtooth (certified {EPS}-far from H_{K}):")
    print(f"  verdict : {'ACCEPT' if verdict.accept else 'REJECT'} at stage {verdict.stage!r}")
    print(f"  reason  : {verdict.reason}")
    print(f"  samples : {verdict.samples_used:,.0f}")

    # The paper's literal constants are exposed too (astronomical budgets,
    # identical structure):
    paper_budget = TesterConfig.paper()
    from repro.core.budget import algorithm1_budget

    print(f"\nworst-case budget, practical profile : "
          f"{algorithm1_budget(N, K, EPS):,.0f} samples")
    print(f"worst-case budget, paper constants   : "
          f"{algorithm1_budget(N, K, EPS, config=paper_budget):,.0f} samples")


if __name__ == "__main__":
    main()
