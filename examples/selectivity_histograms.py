"""Database scenario: auditing histogram summaries for a query optimizer.

A query optimizer keeps a k-bucket equi-something histogram per column and
uses it to estimate predicate selectivities.  The classic failure mode is a
column whose value distribution is *not* well captured by few buckets — the
optimizer then mis-estimates selectivities and picks bad plans.

This example plays DBA over four synthetic columns: for each, it draws
samples (as a real system would, via block sampling), asks the tester
"is a K-bucket histogram a faithful summary?", and

* if yes — builds the summary with the agnostic learner and shows how
  accurate its range-selectivity estimates are;
* if no — reports that the column needs a different summary (more buckets,
  or a sketch), and shows the selectivity error a forced K-bucket summary
  would have caused.

Run:  python examples/selectivity_histograms.py
"""

import numpy as np

from repro import families, test_histogram
from repro.distributions.distances import tv_distance
from repro.learning import learn_histogram_agnostic

N = 8_192  # distinct values in the column's domain
K = 12  # buckets the optimizer is willing to store
EPS = 0.25  # acceptable summary error (total variation)


def build_columns() -> dict:
    """Four attribute-value distributions a warehouse might hold."""
    rng = np.random.default_rng(7)
    return {
        "order_status": families.random_histogram(N, 6, rng).to_distribution(),
        "unit_price": families.staircase(N, K, ratio=1.6).to_distribution(),
        "product_views": families.zipf(N, alpha=1.05),
        "promo_flag_noise": families.far_from_hk(N, K, EPS, rng),
    }


def selectivity_error(dist, summary, rng, queries: int = 200) -> float:
    """Worst range-predicate selectivity error of the summary (sampled)."""
    true_cdf = np.cumsum(dist.pmf)
    est_cdf = np.cumsum(summary.to_pmf())
    worst = 0.0
    for _ in range(queries):
        lo, hi = sorted(rng.integers(0, N, size=2))
        truth = true_cdf[hi] - (true_cdf[lo - 1] if lo > 0 else 0.0)
        estimate = est_cdf[hi] - (est_cdf[lo - 1] if lo > 0 else 0.0)
        worst = max(worst, abs(truth - estimate))
    return worst


def main() -> None:
    rng = np.random.default_rng(0)
    columns = build_columns()
    print(f"auditing {len(columns)} columns for {K}-bucket summaries "
          f"(eps = {EPS})\n")
    for name, dist in columns.items():
        verdict = test_histogram(dist, K, EPS, rng=rng)
        summary = learn_histogram_agnostic(dist, K, EPS / 2, rng=rng)
        sel_err = selectivity_error(dist, summary, rng)
        tv = tv_distance(dist, summary.to_pmf())
        status = "OK: histogram summary is faithful" if verdict.accept else (
            "FLAG: column is not k-histogram-like - summary would mislead")
        print(f"column {name!r}")
        print(f"  tester        : {'ACCEPT' if verdict.accept else 'REJECT'} "
              f"({verdict.samples_used:,.0f} samples)  ->  {status}")
        print(f"  forced summary: TV error {tv:.3f}, "
              f"worst range-selectivity error {sel_err:.3f}\n")


if __name__ == "__main__":
    main()
