"""E10 (Table 3) — the Proposition 4.2 reduction, end to end.

The histogram tester (Algorithm 1), used strictly as a black box, decides
``SUPPSIZE_m`` promise instances through random-permutation embedding —
the mechanism behind the ``Ω(k/(ε log k))`` lower bound.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, check

from repro.core.tester import test_histogram
from repro.experiments.report import print_experiment
from repro.lowerbounds.support_size import (
    reduction_parameters,
    solve_suppsize_via_tester,
    suppsize_instance,
)

GRID_K = [9, 15, 21]
INSTANCES_PER_SIDE = 4


def _histogram_tester(source, k, eps):
    return test_histogram(source, k, eps, config=CONFIG).accept


def run():
    rows = []
    for k in GRID_K:
        m, eps1 = reduction_parameters(k)
        n = 80 * m
        small_ok = large_ok = 0
        for seed in range(INSTANCES_PER_SIDE):
            inst_small = suppsize_instance(m, True, rng=seed)
            inst_large = suppsize_instance(m, False, rng=100 + seed)
            small_ok += solve_suppsize_via_tester(inst_small, n, _histogram_tester, rng=200 + seed)
            large_ok += not solve_suppsize_via_tester(inst_large, n, _histogram_tester, rng=300 + seed)
        rows.append([k, m, n, eps1, small_ok, large_ok, INSTANCES_PER_SIDE])
    return rows


def test_e10_suppsize_reduction(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        "E10: SUPPSIZE via the histogram tester (Proposition 4.2 reduction)",
        ["k", "m", "n", "eps1", "small correct", "large correct", "per side"],
        rows,
    )
    for k, m, n, eps1, small_ok, large_ok, per_side in rows:
        check(f"k={k}: small side >= 3/4", small_ok >= 3 * per_side // 4)
        check(f"k={k}: large side >= 3/4", large_ok >= 3 * per_side // 4)
