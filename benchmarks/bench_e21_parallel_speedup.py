"""E21 — parallel trial-execution speedup and determinism.

Wall-clock time of :func:`repro.experiments.runner.acceptance_probability`
on a fixed completeness workload, as a function of worker count.  Two shape
checks encode the engine's contract:

* every worker count produces a **bit-identical** estimate (determinism —
  this one is a hard expectation and should PASS everywhere);
* ≥ 2× speedup at 4 workers (throughput — expect WARN on machines with
  fewer than ~4 usable cores; the trials are embarrassingly parallel, so
  on real hardware the scaling is near-linear until the core count).

Usage::

    python benchmarks/bench_e21_parallel_speedup.py [--smoke]
        [--trials T] [--n N] [--k K] [--workers 1,2,4]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, EPS, check, write_bench_json

from repro.experiments import acceptance_probability
from repro.experiments.report import print_experiment
from repro.experiments.sweeps import HistogramTester
from repro.experiments.workloads import BoundWorkload

SEED = 21


def run_grid(trials: int, n: int, k: int, worker_counts: list[int]):
    workload = BoundWorkload("staircase", n, k, EPS)
    tester = HistogramTester(k, EPS, CONFIG)
    rows = []
    estimates = {}
    for workers in worker_counts:
        start = time.perf_counter()
        est = acceptance_probability(
            workload, tester, trials=trials, rng=SEED, workers=workers
        )
        elapsed = time.perf_counter() - start
        estimates[workers] = est
        rows.append([workers, elapsed, trials / elapsed, est.rate, est.mean_samples])
    base = rows[0][1]
    rows = [row + [base / row[1]] for row in rows]
    return rows, estimates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small fast grid (<60 s)")
    parser.add_argument("--trials", type=int, default=None, help="trials per run")
    parser.add_argument("--n", type=int, default=None, help="domain size")
    parser.add_argument("--k", type=int, default=4, help="histogram pieces")
    parser.add_argument(
        "--workers", default="1,2,4", help="comma-separated worker counts"
    )
    args = parser.parse_args(argv)

    trials = args.trials if args.trials is not None else (24 if args.smoke else 200)
    n = args.n if args.n is not None else (512 if args.smoke else 2048)
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    if not worker_counts:
        raise SystemExit("--workers must name at least one count")

    rows, estimates = run_grid(trials, n, args.k, worker_counts)
    print_experiment(
        f"E21: parallel speedup (n={n}, k={args.k}, eps={EPS}, {trials} trials)",
        ["workers", "wall s", "trials/s", "accept rate", "samples/trial", "speedup"],
        rows,
    )

    reference = estimates[worker_counts[0]]
    identical = all(est == reference for est in estimates.values())
    check("all worker counts bit-identical", identical)
    by_count = {row[0]: row[-1] for row in rows}
    if 4 in by_count:
        check("speedup(4 workers) >= 2x", by_count[4] >= 2.0)
    write_bench_json(
        "e21",
        params={
            "trials": trials, "n": n, "k": args.k, "eps": EPS,
            "workers": worker_counts, "smoke": bool(args.smoke),
        },
        columns=["workers", "wall_s", "trials_per_s", "accept_rate",
                 "samples_per_trial", "speedup"],
        rows=rows,
        metrics={
            "bit_identical": identical,
            "speedup_by_workers": {str(row[0]): row[-1] for row in rows},
        },
    )
    return 0 if identical else 1


def test_e21_parallel_speedup(benchmark):
    rows, estimates = benchmark.pedantic(
        lambda: run_grid(24, 512, 4, [1, 2, 4]), rounds=1, iterations=1
    )
    print_experiment(
        "E21 (smoke): parallel speedup",
        ["workers", "wall s", "trials/s", "accept rate", "samples/trial", "speedup"],
        rows,
    )
    reference = next(iter(estimates.values()))
    assert all(est == reference for est in estimates.values())


if __name__ == "__main__":
    sys.exit(main())
