"""E11 (Fig 8) — the Proposition 3.3 statistic separation.

Measures E[Z] and Var[Z] of the [ADK15] χ² statistic in the two regimes the
proposition separates: χ²-close references (completeness) vs TV-far
references (soundness).  The structural claims: the expectations straddle
the decision threshold with a wide gap, and in the far regime
``Var Z ≤ (E Z)²/100``.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.core.chi2 import active_mask, expected_statistic, interval_statistics
from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.experiments.report import print_experiment
from repro.util.intervals import Partition

EPS = 0.25
GRID_N = [1000, 4000]
BATCHES = 200


def measure(dist, ref, n, m):
    mask = active_mask(ref.pmf, EPS, 1 / 50)
    part = Partition.trivial(n)
    gen = np.random.default_rng(0)
    zs = [
        float(
            interval_statistics(
                dist.sample_counts_poissonized(m, gen), m, ref.pmf, part, mask
            ).sum()
        )
        for _ in range(BATCHES)
    ]
    return float(np.mean(zs)), float(np.var(zs))


def run():
    rows = []
    for n in GRID_N:
        m = 64.0 * np.sqrt(n) / EPS**2
        threshold = m * EPS**2 / 8.0
        ref = families.staircase(n, 4).to_distribution()

        # Completeness regime: a slightly-misestimated reference
        # (chi2 approximately eps^2/500).
        drift = np.sqrt(EPS**2 / 500.0 / n)
        close_pmf = ref.pmf * (1.0 + drift * np.where(np.arange(n) % 2 == 0, 1, -1))
        close = DiscreteDistribution(close_pmf / close_pmf.sum())
        mean_c, var_c = measure(close, ref, n, m)

        # Soundness regime: certified eps-far from a uniform reference.
        uref = families.uniform(n)
        far = families.far_from_hk(n, 1, EPS, rng=1)
        mean_f, var_f = measure(far, uref, n, m)
        exp_f = expected_statistic(far, uref, m, EPS)

        rows.append([n, m, threshold, mean_c, var_c, mean_f, var_f, exp_f])
    return rows


def test_e11_chi2_separation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E11: chi2 statistic separation (eps={EPS}, {BATCHES} batches)",
        ["n", "m", "threshold", "E[Z] close", "Var close", "E[Z] far", "Var far", "theory E[Z] far"],
        rows,
    )
    for n, m, threshold, mean_c, var_c, mean_f, var_f, exp_f in rows:
        check(f"n={n}: close mean below threshold", mean_c < threshold)
        check(f"n={n}: far mean above threshold", mean_f > threshold)
        check(f"n={n}: gap at least 10x", mean_f > 10 * max(mean_c, 1.0))
        check(f"n={n}: far matches theory within 15%", abs(mean_f - exp_f) < 0.15 * exp_f)
        check(f"n={n}: far relative variance <= 1/100", var_f <= exp_f**2 / 100.0)
