"""E27 — distributed sweep under a seeded kill schedule.

Runs the same complexity sweep twice: serially through
``complexity_sweep``, and distributed over a supervised fleet of worker
subprocesses coordinating through the crash-consistent sqlite results
store (:mod:`repro.distributed`) while a deterministic
:class:`~repro.distributed.chaos.ChaosSchedule` kills workers after they
compute but before they commit, stalls them past their lease deadlines,
and replays duplicate completions.  The numbers the regression gate
watches:

* **byte identity** — assembled points, fitted exponent, and the canonical
  trace must equal the serial run's exactly (no tolerance, no perf
  factor: distribution is an execution knob, never an identity knob);
* **zero drift** — every committed ``samples_total`` must equal the total
  recomputed from that shard's stored trace ledger events;
* **recovery** — the kill schedule must actually fire (≥1 worker restart)
  and the sweep must still finish every shard exactly once;
* **wall clock** — distributed wall seconds, gated within
  ``REPRO_PERF_FACTOR×`` of the committed baseline (the one hardware-
  dependent number here).

Emits ``BENCH_e27.json`` (gated by ``check_distributed_regression.py``
against ``baselines/BENCH_e27_baseline.json``).

Usage::

    python benchmarks/bench_e27_distributed.py [--smoke]
        [--processes P] [--json PATH]
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import KERNEL, check, write_bench_json

from repro.distributed import (
    ChaosSchedule,
    SweepSpec,
    assemble,
    create_store,
    run_fleet,
    summarize,
)
from repro.experiments.report import print_experiment
from repro.experiments.sweeps import complexity_sweep
from repro.observability.trace import RecordingTracer, canonical_jsonl

SEED = 7
#: Seed 5 at rate 0.6 deterministically kills w0 on its first shard and
#: gives w1 a late commit + a duplicate completion — one of each fault
#: class per run, so no gate is ever vacuously green.
CHAOS = ChaosSchedule(seed=5, rate=0.6, max_actions=2, stall_seconds=0.1)


def spec_for(smoke: bool) -> SweepSpec:
    values = (32.0, 48.0, 64.0, 80.0) if smoke else (32.0, 48.0, 64.0, 96.0, 128.0, 192.0)
    trials = 2 if smoke else 6
    return SweepSpec(
        axis="n", values=values, n=int(values[-1]), k=3, eps=0.3,
        trials=trials, bisection_steps=1 if smoke else 3, seed=SEED,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI grid")
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument("--json", default=None, metavar="PATH")
    args = parser.parse_args(argv)
    spec = spec_for(args.smoke)

    serial_tracer = RecordingTracer()
    start = time.perf_counter()
    serial = complexity_sweep(
        spec.axis, list(spec.values), n=spec.n, k=spec.k, eps=spec.eps,
        trials=spec.trials, bisection_steps=spec.bisection_steps,
        rng=spec.seed, kernel=KERNEL, trace=serial_tracer,
    )
    wall_serial = time.perf_counter() - start
    serial_trace = canonical_jsonl(serial_tracer.events)

    with tempfile.TemporaryDirectory() as tmp:
        store = create_store(Path(tmp) / "sweep.sqlite", spec)
        start = time.perf_counter()
        fleet = run_fleet(
            store, processes=args.processes, lease_seconds=1.0,
            kernel=KERNEL, chaos=CHAOS, timeout=600,
        )
        wall_distributed = time.perf_counter() - start
        tracer = RecordingTracer()
        result = assemble(store, trace=tracer)
        report = summarize(store)
        tally = store.event_tally()
        store.close()

    byte_identical = (
        result.points == serial.points
        and result.exponent == serial.exponent
        and canonical_jsonl(tracer.events) == serial_trace
    )
    drift_zero = report.total_drift == 0 and all(
        s.drift == 0 for s in report.shards
    )

    rows = [
        [s.index, s.worker_id, s.committed_samples, s.drift]
        for s in report.shards
    ]
    print_experiment(
        f"E27: {len(spec.values)}-shard distributed sweep, "
        f"{args.processes} workers, seeded kill schedule",
        ["shard", "committed by", "samples", "drift"],
        rows,
    )
    print(f"  serial wall   : {wall_serial:.3f}s")
    print(f"  fleet wall    : {wall_distributed:.3f}s "
          f"({fleet.workers_spawned} spawned, {fleet.restarts} restarts)")
    print(f"  events        : " + "  ".join(
        f"{k}={v}" for k, v in sorted(tally.items()) if v))

    check("assembled sweep byte-identical to serial", byte_identical)
    check("zero sample-accounting drift", drift_zero)
    check("kill schedule fired (>=1 restart)", fleet.restarts >= 1)
    check("every shard committed exactly once",
          tally["commit"] == len(spec.values))
    check("faults were absorbed (expiry or duplicate recorded)",
          tally["expire"] + tally["duplicate"] >= 1)

    write_bench_json(
        "e27",
        params={
            "axis": spec.axis, "values": list(spec.values), "n": spec.n,
            "k": spec.k, "eps": spec.eps, "trials": spec.trials,
            "bisection_steps": spec.bisection_steps, "seed": SEED,
            "processes": args.processes, "chaos_seed": CHAOS.seed,
            "chaos_rate": CHAOS.rate, "kernel": KERNEL,
        },
        columns=["shard", "committed_by", "samples", "drift"],
        rows=rows,
        metrics={
            "wall_serial_seconds": round(wall_serial, 3),
            "wall_distributed_seconds": round(wall_distributed, 3),
            "byte_identical": byte_identical,
            "total_drift": report.total_drift,
            "restarts": fleet.restarts,
            "workers_spawned": fleet.workers_spawned,
            "commits": tally["commit"],
            "duplicates": tally["duplicate"],
            "expiries": tally["expire"],
            "shards": len(spec.values),
        },
        path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
