"""E19 (ablation) — sensitivity to the χ² sample-factor constant.

The practical profile's one load-bearing calibration is
``chi2_sample_factor``: the final accept threshold is
``(factor/8)·√n`` while the statistic's null noise is ``√(2n)``, so the
threshold clears the noise by ``factor/(8·√2)`` σ — *independently of n*.
The paper handles this with factor 20000; the calibration note predicts a
cliff around factor ≈ 34 (3σ).  This ablation sweeps the factor and
measures completeness/soundness on both sides of the predicted cliff.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions import families
from repro.experiments.report import print_experiment

N, K, EPS = 3000, 4, 0.3
TRIALS = 16
FACTORS = [8.0, 16.0, 32.0, 64.0, 128.0]


def run():
    complete = families.staircase(N, K, ratio=2.5).to_distribution()
    rows = []
    for factor in FACTORS:
        config = TesterConfig.practical(chi2_sample_factor=factor)
        acc = rej = 0
        for seed in range(TRIALS):
            acc += test_histogram(complete, K, EPS, config=config, rng=seed).accept
            far = families.far_from_hk(N, K, EPS, rng=seed)
            rej += not test_histogram(far, K, EPS, config=config, rng=100 + seed).accept
        sigma_margin = factor / (8.0 * 2.0**0.5)
        rows.append([factor, sigma_margin, acc / TRIALS, rej / TRIALS])
    return rows


def test_e19_constant_sensitivity(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E19: chi2_sample_factor sweep (n={N}, k={K}, eps={EPS}, {TRIALS} trials/side)",
        ["factor", "threshold sigma margin", "completeness", "soundness"],
        rows,
    )
    by_factor = {r[0]: r for r in rows}
    check("soundness holds at every factor", all(r[3] >= 2 / 3 for r in rows))
    check("completeness solid above the cliff (>= 64)", by_factor[64.0][2] >= 2 / 3)
    check(
        "completeness degraded below the cliff (8)",
        by_factor[8.0][2] < by_factor[64.0][2] + 1e-9,
    )
    comp = [r[2] for r in rows]
    check("completeness non-decreasing in factor", all(b >= a - 0.13 for a, b in zip(comp, comp[1:])))
