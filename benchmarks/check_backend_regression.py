"""CI backend-matrix gate: error calibration + the cdkl22 sample advantage.

Compares a freshly produced ``BENCH_e25.json`` (see
``bench_e25_backend_matrix.py``) against
``benchmarks/baselines/BENCH_e25_baseline.json``.  Three gates:

* **calibration** — the fresh run's worst per-cell error count must stay
  within its own exact binomial bound (per-trial rate 1/3 at flake
  probability 1e-6).  Absolute: correctness never takes a hardware factor;
* **crossover** — the cdkl22/pods16 mean-sample ratio at the fresh run's
  largest n must stay at or below 0.6 — the near-optimal backend must keep
  *measurably* beating the pods16 schedule, not just tie it;
* **baseline drift** — at every n the fresh grid shares with the baseline
  grid, the fresh ratio must stay within ``--headroom`` (default 1.5×) of
  the baseline ratio.  Sample draws are seed-deterministic, so real drift
  here means a budget-schedule change quietly eroded the advantage.

Usage::

    python benchmarks/check_backend_regression.py BENCH_e25.json
        [--baseline PATH] [--headroom 1.5]
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_e25_baseline.json"

#: The absolute crossover bar: cdkl22 must use at most this fraction of the
#: pods16 empirical samples at the largest measured n.
CROSSOVER_CEILING = 0.6


def load(path: "str | Path") -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "metrics" not in data or "bench" not in data:
        raise SystemExit(f"{path}: not a BENCH_*.json payload")
    return data


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_e25.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--headroom", type=float, default=1.5,
                        help="allowed ratio drift vs baseline (default 1.5)")
    args = parser.parse_args(argv)
    if args.headroom <= 0:
        raise SystemExit(f"headroom must be positive, got {args.headroom}")

    fresh, base = load(args.fresh), load(args.baseline)
    if fresh["bench"] != base["bench"]:
        raise SystemExit(
            f"bench mismatch: fresh={fresh['bench']!r} baseline={base['bench']!r}"
        )

    failures = []
    fm, bm = fresh["metrics"], base["metrics"]

    worst = fm.get("worst_cell_errors")
    bound = fm.get("max_errors_allowed")
    if worst is None or bound is None:
        raise SystemExit("fresh payload missing error metrics")
    verdict = "ok" if worst <= bound else "REGRESSION"
    print(f"calibration gate: worst cell {worst} errors vs binomial bound "
          f"{bound}  {verdict}")
    if worst > bound:
        failures.append("calibration")

    ratio = fm.get("sample_ratio_largest_n", float("inf"))
    verdict = "ok" if ratio <= CROSSOVER_CEILING else "REGRESSION"
    print(f"crossover gate  : ratio {ratio:.4f} at largest n vs ceiling "
          f"{CROSSOVER_CEILING}  {verdict}")
    if ratio > CROSSOVER_CEILING:
        failures.append("crossover")

    fresh_ratios = fm.get("sample_ratios", {})
    base_ratios = bm.get("sample_ratios", {})
    shared = sorted(set(fresh_ratios) & set(base_ratios), key=int)
    if not shared:
        print("baseline gate   : no shared grid points with baseline  REGRESSION")
        failures.append("baseline-grid")
    for n in shared:
        ceiling = args.headroom * base_ratios[n]
        got = fresh_ratios[n]
        verdict = "ok" if got <= ceiling else "REGRESSION"
        print(f"baseline gate   : n={n} ratio {got:.4f} vs ceiling "
              f"{ceiling:.4f}  {verdict}")
        if got > ceiling:
            failures.append(f"baseline-drift@n={n}")

    if failures:
        print(f"FAIL: {failures}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
