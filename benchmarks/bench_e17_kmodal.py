"""E17 (extension) — k-modal testing through the histogram machinery.

The paper's Theorem 1.2 remark says its lower bound also covers k-modal
testing; this experiment exercises the matching upper-bound route built in
this repository: Birgé-decompose (mode-split geometric flattening) and test
via ``H_L`` membership plus a robust shape check.

Shape claims: k-modal inputs accepted, alternating (far) inputs rejected,
and the Birgé flattening's TV error stays below its ``O(ε)`` guarantee.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.baselines.kmodal_tester import test_k_modal
from repro.distributions import families
from repro.distributions.distances import tv_distance
from repro.distributions.kmodal import birge_flattening, random_k_modal
from repro.experiments.report import print_experiment

N, EPS = 2500, 0.3
TRIALS = 10


def run():
    rows = []
    scenarios = [
        ("monotone (k=0)", 0, lambda s: families.staircase(N, 8, ratio=1.6).to_distribution(), True),
        ("random 2-modal (k=3)", 3, lambda s: random_k_modal(N, 2, rng=s), True),
        ("bimodal mixture (k=3)", 3,
         lambda s: families.discretized_gaussian_mixture(N, [0.3, 0.7], [0.05, 0.08]), True),
        ("sawtooth (k=3)", 3, lambda s: families.far_from_hk(N, 50, EPS, rng=s), False),
        ("8 humps (k=0)", 0,
         lambda s: families.discretized_gaussian_mixture(
             N, [0.1, 0.22, 0.35, 0.47, 0.6, 0.72, 0.85, 0.95], [0.02] * 8), False),
    ]
    for name, k, factory, should_accept in scenarios:
        good = 0
        samples = 0.0
        for seed in range(TRIALS):
            verdict = test_k_modal(factory(seed), k, EPS, rng=500 + seed)
            good += verdict.accept == should_accept
            samples += verdict.samples_used
        rows.append([name, "accept" if should_accept else "reject",
                     good / TRIALS, samples / TRIALS])
    return rows


def test_e17_kmodal(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E17: k-modality testing via Birgé + H_L (n={N}, eps={EPS}, {TRIALS} trials)",
        ["scenario", "expected", "correct rate", "samples/trial"],
        rows,
    )
    for name, expected, rate, _ in rows:
        check(f"{name}: correct >= 2/3", rate >= 2 / 3)

    # Birgé decomposition quality.
    flat_rows = []
    for k in (0, 1, 3):
        errs = [
            tv_distance(d := random_k_modal(N, k, rng=s), birge_flattening(d, 0.1).to_pmf())
            for s in range(5)
        ]
        flat_rows.append([k, max(errs)])
    print_experiment(
        "E17b: Birgé mode-split flattening TV error at eps=0.1",
        ["k", "max TV error (5 draws)"],
        flat_rows,
    )
    for k, err in flat_rows:
        check(f"Birgé error O(eps) at k={k}", err <= 0.2)
