"""CI distributed-smoke gate: byte identity, accounting, recovery, wall clock.

Compares a freshly produced ``BENCH_e27.json`` (see
``bench_e27_distributed.py``) against
``benchmarks/baselines/BENCH_e27_baseline.json``.  Four gates:

* **byte identity** — the fleet-assembled sweep (points, exponent,
  canonical trace) must equal the serial run's.  Takes no perf factor:
  distribution may never change an answer, only how fast it arrives;
* **accounting** — ``total_drift`` must be exactly 0 and every shard must
  have committed exactly once.  Also factor-free;
* **recovery** — the seeded kill schedule must have fired (≥1 restart)
  and been absorbed (≥1 expiry or duplicate recorded) — a green run in
  which no fault ever happened proves nothing;
* **wall clock** — fresh ``wall_distributed_seconds`` must stay below
  ``factor ×`` the baseline (default factor 2.0; the baseline already
  carries headroom for CI hosts).

``REPRO_PERF_FACTOR`` overrides ``--factor`` (e.g. a known-slow runner).

Usage::

    python benchmarks/check_distributed_regression.py BENCH_e27.json
        [--baseline PATH] [--factor 2.0]
"""

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_e27_baseline.json"


def load(path: "str | Path") -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "metrics" not in data or "bench" not in data:
        raise SystemExit(f"{path}: not a BENCH_*.json payload")
    return data


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_e27.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--factor", type=float, default=None,
                        help="allowed slowdown vs baseline (default 2.0)")
    args = parser.parse_args(argv)

    factor = args.factor
    if factor is None:
        factor = float(os.environ.get("REPRO_PERF_FACTOR", "2.0"))
    if factor <= 0:
        raise SystemExit(f"factor must be positive, got {factor}")

    fresh, base = load(args.fresh), load(args.baseline)
    if fresh["bench"] != base["bench"]:
        raise SystemExit(
            f"bench mismatch: fresh={fresh['bench']!r} baseline={base['bench']!r}"
        )

    failures = []
    fm, bm = fresh["metrics"], base["metrics"]

    if fm.get("byte_identical", False):
        print("identity gate  : assembled sweep byte-identical to serial  ok")
    else:
        print("identity gate  : assembled sweep DIFFERS from serial  REGRESSION")
        failures.append("byte-identity")

    drift = fm.get("total_drift", None)
    commits, shards = fm.get("commits", -1), fm.get("shards", -2)
    if drift == 0 and commits == shards:
        print(f"accounting gate: drift=0, {commits}/{shards} shards committed  ok")
    else:
        print(f"accounting gate: drift={drift}, commits={commits}/{shards}  REGRESSION")
        failures.append("accounting")

    restarts = fm.get("restarts", 0)
    absorbed = fm.get("expiries", 0) + fm.get("duplicates", 0)
    if restarts >= 1 and absorbed >= 1:
        print(f"recovery gate  : {restarts} restarts, {absorbed} faults absorbed  ok")
    else:
        print(f"recovery gate  : restarts={restarts}, absorbed={absorbed} "
              "(kill schedule never fired)  REGRESSION")
        failures.append("recovery")

    ceiling = factor * bm["wall_distributed_seconds"]
    got = fm.get("wall_distributed_seconds", float("inf"))
    verdict = "ok" if got <= ceiling else "REGRESSION"
    print(f"wall-clock gate: {got:7.2f}s vs ceiling {ceiling:7.2f}s  {verdict}")
    if got > ceiling:
        failures.append("wall-clock")

    if failures:
        print(f"FAIL: {failures}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
