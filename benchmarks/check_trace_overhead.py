"""CI perf-smoke gate for the observability layer.

Two gates over a freshly produced ``BENCH_e23.json`` (see
``bench_e23_observability.py``):

* **no-op tracer overhead** — the instrumented pipeline run with the
  default :data:`~repro.observability.trace.NULL_TRACER` must stay within
  5% of the committed pre-instrumentation baseline timing
  (``baselines/BENCH_e23_baseline.json``), times ``--factor`` headroom for
  slower CI hosts (default 2.0, overridable via ``REPRO_PERF_FACTOR`` —
  set 1.0 on the reference host to enforce the bare 5%);
* **trace schema** — the trace file the benchmark wrote must validate
  line-by-line against the JSONL event schema, with strictly increasing
  ``seq`` (:func:`repro.observability.trace.validate_trace`).

Usage::

    python benchmarks/check_trace_overhead.py BENCH_e23.json
        [--baseline PATH] [--factor 2.0]
"""

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.observability.trace import validate_trace

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_e23_baseline.json"
OVERHEAD_BUDGET = 0.05  # the acceptance bar: <= 5% on the reference host


def load(path: "str | Path") -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "metrics" not in data or "bench" not in data:
        raise SystemExit(f"{path}: not a BENCH_*.json payload")
    return data


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_e23.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--factor", type=float, default=None,
                        help="host-speed headroom multiplier (default 2.0)")
    args = parser.parse_args(argv)

    factor = args.factor
    if factor is None:
        factor = float(os.environ.get("REPRO_PERF_FACTOR", "2.0"))
    if factor <= 0:
        raise SystemExit(f"factor must be positive, got {factor}")

    fresh, base = load(args.fresh), load(args.baseline)
    if fresh["bench"] != base["bench"]:
        raise SystemExit(
            f"bench mismatch: fresh={fresh['bench']!r} baseline={base['bench']!r}"
        )

    failures = []

    base_off = base["metrics"]["tracer_off_seconds"]
    fresh_off = fresh["metrics"]["tracer_off_seconds"]
    allowed = base_off * (1.0 + OVERHEAD_BUDGET) * factor
    verdict = "ok" if fresh_off <= allowed else "REGRESSION"
    print(
        f"no-op tracer gate: {fresh_off:.4f}s vs allowed {allowed:.4f}s "
        f"(baseline {base_off:.4f}s x {1.0 + OVERHEAD_BUDGET:g} x factor "
        f"{factor:g})  {verdict}"
    )
    if fresh_off > allowed:
        failures.append("tracer-off overhead")

    trace_file = fresh["metrics"].get("trace_file")
    if not trace_file:
        raise SystemExit("fresh metrics carry no trace_file to validate")
    try:
        events = validate_trace(trace_file)
    except (OSError, ValueError) as exc:
        print(f"trace schema gate: FAILED — {exc}")
        failures.append("trace schema")
    else:
        print(f"trace schema gate: {trace_file} ok ({events} events)")
        recorded = fresh["metrics"].get("trace_events")
        if recorded is not None and recorded != events:
            print(
                f"trace schema gate: event count drifted "
                f"({recorded} at write time, {events} on disk)"
            )
            failures.append("trace event count")

    if failures:
        print(f"FAILED: {', '.join(failures)}")
        return 1
    print("all observability gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
