"""E8 (Fig 6) — the Paninski lower-bound family in action.

Two halves of Proposition 4.1:

* the construction: every ``Q_ε`` member is certifiably far from ``H_k``
  (closed form, cross-checked against the exact DP) and Algorithm 1
  rejects it;
* the hardness: the best pair-statistic distinguisher's success rate climbs
  from chance to certainty precisely around the ``√n/(c²ε²)`` scale.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, check

from repro.core.tester import test_histogram
from repro.distributions.projection import unconstrained_l1_distance
from repro.experiments.report import format_series, print_experiment
from repro.lowerbounds.paninski import (
    critical_sample_size,
    distinguishing_experiment,
    paninski_distance_lower_bound,
    paninski_instance,
)

N, EPS, C = 4000, 0.1, 6.0
MULTS = [0.125, 0.25, 0.5, 1, 2, 4, 8, 16]


def run():
    critical = critical_sample_size(N, EPS, c=C)
    curve = [
        distinguishing_experiment(N, EPS, critical * m, trials=240, rng=i, c=C)
        for i, m in enumerate(MULTS)
    ]
    return critical, curve


def test_e08_paninski(benchmark):
    critical, curve = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [m, r.m, r.success_rate] for m, r in zip(MULTS, curve)
    ]
    print_experiment(
        f"E8: uniform-vs-Q_eps distinguishing (n={N}, eps={EPS}, critical m = {critical:,.0f})",
        ["multiplier", "samples m", "success rate"],
        rows,
    )
    print(format_series([r.m for r in curve], [r.success_rate for r in curve]))

    check("chance below 1/4 of critical", curve[1].success_rate < 0.75)
    check("solved at 16x critical", curve[-1].success_rate > 0.9)
    rates = [r.success_rate for r in curve]
    check("roughly monotone", all(b >= a - 0.12 for a, b in zip(rates, rates[1:])))

    # Farness of the family, certificate vs exact DP (small n for the DP).
    small_n = 600
    inst = paninski_instance(small_n, EPS, rng=0, c=C)
    cert = paninski_distance_lower_bound(small_n, EPS, 32, c=C)
    exact = unconstrained_l1_distance(inst, 32)
    print_experiment(
        "E8b: farness certificate vs exact DP (n=600, k=32)",
        ["certified >=", "exact DP lower bound"],
        [[cert, exact]],
    )
    check("certificate valid", exact >= cert - 1e-9)

    # And the tester itself rejects the family.
    rejected = sum(
        not test_histogram(paninski_instance(N, EPS, rng=s, c=C), 16, 2 * EPS, config=CONFIG, rng=s).accept
        for s in range(8)
    )
    print(f"  Algorithm 1 rejected {rejected}/8 Q_eps members at k=16, eps={2*EPS}")
    check("tester rejects the family", rejected >= 6)
