"""E5 (Fig 4) — empirical sample complexity vs k.

Fixed n and ε, sweeping k.  Theorem 3.1's second term predicts near-linear
growth in k (polylog factors aside) once k dominates the √n floor.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, check

from repro.core.tester import test_histogram
from repro.distributions import families
from repro.experiments import empirical_sample_complexity
from repro.experiments.report import format_series, print_experiment

N, EPS = 4000, 0.3
GRID_K = [2, 4, 8, 16]


def complexity_at(k: int, rng: int):
    family = lambda scale: (
        lambda src: test_histogram(src, k, EPS, config=CONFIG.scaled(scale)).accept
    )
    return empirical_sample_complexity(
        family,
        complete=lambda g: families.random_histogram(
            N, k, g, min_width=max(1, N // (8 * k))
        ).to_distribution(),
        far=lambda g: families.far_from_hk(N, k, EPS, g),
        trials=9,
        bisection_steps=5,
        rng=rng,
    )


def run():
    return [complexity_at(k, rng=i) for i, k in enumerate(GRID_K)]


def test_e05_scaling_k(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    samples = [r.samples for r in results]
    rows = [[k, r.samples, r.scale, r.samples / k] for k, r in zip(GRID_K, results)]
    print_experiment(
        f"E5: empirical sample complexity vs k (n={N}, eps={EPS})",
        ["k", "samples (2/3 frontier)", "budget scale", "samples/k"],
        rows,
    )
    print(format_series(GRID_K, samples))
    check("complexity non-decreasing in k (tail)", samples[-1] >= samples[0])
    # Near-linear, not quadratic: 8x k should cost well under 64x samples.
    check("growth over 8x k below quadratic", samples[-1] / samples[0] < 64)
