"""E25 — backend matrix: pods16 vs cdkl22 head-to-head.

Runs both tester backends over the same workload pair — one true
k-histogram (completeness side) and one certified ε-far instance
(soundness side) — across a grid of domain sizes, measuring for each
``(n, backend)`` cell:

* **fn / fp errors** — empirical completeness and soundness errors among
  the fixed-seed trials, each checked against the exact binomial bound for
  per-trial error rate 1/3 (the paper's guarantee; both backends must meet
  the *same* bar);
* **samples/trial** — mean empirical samples actually drawn, the number
  the near-optimal backend exists to shrink;
* **wall seconds** per cell.

The headline metric is the **sample-complexity crossover**: the
cdkl22/pods16 mean-sample ratio at the largest grid point.  The cdkl22
schedule drops the sieve (the pods16 budget's dominant √n/ε² × batches
term) in favour of the trimmed final statistic, so the ratio must be well
below 1 and shrink as n grows — ``check_backend_regression.py`` gates both
the error bounds and this ratio against ``BENCH_e25_baseline.json``.

Emits ``BENCH_e25.json``.  The grid iterates through
:func:`checkpointed_loop`, so a killed run resumes per cell.  Note this
benchmark ignores ``REPRO_BACKEND`` by design: it always measures both
backends head-to-head.

Usage::

    python benchmarks/bench_e25_backend_matrix.py [--smoke]
        [--trials T] [--json PATH] [--checkpoint PATH]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, WORKERS, check, checkpointed_loop, write_bench_json

from scipy import stats

from repro.core.backends import BACKENDS, backend_budget
from repro.experiments.runner import acceptance_probability
from repro.experiments.sweeps import HistogramTester
from repro.experiments.workloads import BoundWorkload

SEED = 25
K, EPS = 4, 0.3
YES_WORKLOAD = "staircase"  # true k-histogram: errors here are false negatives
NO_WORKLOAD = "sawtooth-uniform"  # certified eps-far: errors are false positives

#: Same flake budget as tests/calibration: if a backend only just met the
#: paper's 1/3 error bound, exceeding binom.ppf(1-FLAKE_P, trials, 1/3)
#: errors has probability below FLAKE_P.
FLAKE_P = 1e-6


def measure_cell(n: int, backend: str, trials: int) -> list:
    """One (n, backend) cell: errors on both sides + mean samples + wall."""
    tester = HistogramTester(K, EPS, CONFIG, backend)
    start = time.perf_counter()
    yes = acceptance_probability(
        BoundWorkload(YES_WORKLOAD, n, K, EPS), tester,
        trials=trials, rng=SEED, workers=WORKERS,
    )
    no = acceptance_probability(
        BoundWorkload(NO_WORKLOAD, n, K, EPS), tester,
        trials=trials, rng=SEED + 1, workers=WORKERS,
    )
    wall = time.perf_counter() - start
    fn_errors = trials - round(yes.rate * trials)
    fp_errors = round(no.rate * trials)
    mean_samples = 0.5 * (yes.mean_samples + no.mean_samples)
    return [
        n, backend, fn_errors, fp_errors,
        round(mean_samples, 1), round(wall, 3),
    ]


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI matrix (one n, fewer trials)")
    parser.add_argument("--trials", type=int, default=None,
                        help="trials per cell and side (default 60; smoke 20)")
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="resume a killed grid from this JSON file")
    args = parser.parse_args(argv)
    grid = (600,) if args.smoke else (600, 1200, 2500)
    trials = args.trials if args.trials is not None else (20 if args.smoke else 60)
    max_errors = int(stats.binom.ppf(1 - FLAKE_P, trials, 1.0 / 3.0))

    points = [(n, backend) for n in grid for backend in BACKENDS]
    rows = checkpointed_loop(
        points,
        lambda point: measure_cell(point[0], point[1], trials),
        checkpoint=args.checkpoint,
        fingerprint={"grid": list(grid), "trials": trials, "seed": SEED,
                     "k": K, "eps": EPS,
                     "workloads": [YES_WORKLOAD, NO_WORKLOAD]},
    )

    columns = ["n", "backend", "fn errors", "fp errors",
               "samples/trial", "wall s"]
    from repro.experiments.report import print_experiment

    print_experiment(
        f"E25: backend matrix, k={K}, eps={EPS}, {trials} trials/side "
        f"(yes={YES_WORKLOAD}, no={NO_WORKLOAD})",
        columns, rows,
    )

    by_cell = {(row[0], row[1]): row for row in rows}
    ratios = {}
    for n in grid:
        pods = by_cell[(n, "pods16")][4]
        cdkl = by_cell[(n, "cdkl22")][4]
        ratios[n] = cdkl / pods if pods else float("inf")
        print(f"  sample ratio cdkl22/pods16 @ n={n}: {ratios[n]:.4f}")
    largest = max(grid)

    worst_errors = max(max(row[2], row[3]) for row in rows)
    check(f"all error counts within binomial bound {max_errors}",
          worst_errors <= max_errors)
    check("cdkl22 uses measurably fewer samples at the largest n",
          ratios[largest] <= 0.6)
    check("cdkl22 advantage grows (or holds) with n",
          args.smoke or ratios[largest] <= ratios[min(grid)] * 1.05)
    check("worst-case budgets agree with the measurement",
          backend_budget("cdkl22", largest, K, EPS, CONFIG)
          < backend_budget("pods16", largest, K, EPS, CONFIG))

    write_bench_json(
        "e25",
        params={
            "grid": list(grid), "k": K, "eps": EPS, "trials": trials,
            "seed": SEED, "workers": WORKERS, "smoke": args.smoke,
            "yes_workload": YES_WORKLOAD, "no_workload": NO_WORKLOAD,
        },
        columns=columns,
        rows=rows,
        metrics={
            "max_errors_allowed": max_errors,
            "worst_cell_errors": worst_errors,
            "sample_ratio_largest_n": round(ratios[largest], 4),
            "sample_ratios": {str(n): round(r, 4) for n, r in ratios.items()},
        },
        path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
