"""E3 (Fig 2) — soundness of Algorithm 1.

Rejection rate on certified ε-far workloads (paired-perturbation families
and the Paninski family).  Theorem 3.1's guarantee: rate ≥ 2/3.
"""

import sys
import zlib
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import BACKEND, CONFIG, EPS, K, N, TRIALS, WORKERS, check

from repro.experiments import rejection_probability, soundness_workloads
from repro.experiments.report import print_experiment
from repro.experiments.sweeps import HistogramTester
from repro.experiments.workloads import BoundWorkload


def run_grid():
    rows = []
    for w in soundness_workloads():
        for eps in (EPS, EPS / 2):
            est = rejection_probability(
                BoundWorkload(w.name, N, K, eps),
                HistogramTester(K, eps, CONFIG, BACKEND),
                trials=TRIALS,
                # crc32, not hash(): str hashing is salted per process, and
                # benchmark seeds must be stable across runs.
                rng=zlib.crc32(w.name.encode()) % 1000,
                workers=WORKERS,
            )
            rows.append([w.name, eps, est.rate, est.ci_low, est.mean_samples])
    return rows


def test_e03_soundness(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print_experiment(
        f"E3: soundness rejection rate "
        f"(n={N}, k={K}, backend={BACKEND}, {TRIALS} trials)",
        ["workload", "eps", "reject rate", "99% CI low", "samples/trial"],
        rows,
    )
    for name, eps, rate, _, _ in rows:
        check(f"{name}@eps={eps}: rate >= 2/3", rate >= 2 / 3)
