"""E3 (Fig 2) — soundness of Algorithm 1.

Rejection rate on certified ε-far workloads (paired-perturbation families
and the Paninski family).  Theorem 3.1's guarantee: rate ≥ 2/3.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, EPS, K, N, TRIALS, check

from repro.core.tester import test_histogram
from repro.experiments import make, rejection_probability, soundness_workloads
from repro.experiments.report import print_experiment


def run_grid():
    rows = []
    for w in soundness_workloads():
        for eps in (EPS, EPS / 2):
            est = rejection_probability(
                lambda g, name=w.name, eps=eps: make(name, N, K, eps, g),
                lambda src, eps=eps: test_histogram(src, K, eps, config=CONFIG).accept,
                trials=TRIALS,
                rng=hash(w.name) % 1000,
            )
            rows.append([w.name, eps, est.rate, est.ci_low, est.mean_samples])
    return rows


def test_e03_soundness(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print_experiment(
        f"E3: soundness rejection rate (n={N}, k={K}, {TRIALS} trials)",
        ["workload", "eps", "reject rate", "99% CI low", "samples/trial"],
        rows,
    )
    for name, eps, rate, _, _ in rows:
        check(f"{name}@eps={eps}: rate >= 2/3", rate >= 2 / 3)
