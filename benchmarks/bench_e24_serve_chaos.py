"""E24 — service soak under a deterministic chaos schedule.

Drives the always-on tester service (:mod:`repro.serve`) through a chaos
drill: a population of concurrent stream sessions of which a configured
fraction carries an injected fault (stream failures, contamination, corrupt
samples, virtual-time deadlines, projection-engine faults — the full
:data:`repro.serve.chaos.FAULT_KINDS` cycle).  Measures the service-level
numbers the regression gate watches:

* **sessions/sec** — sustained terminal-outcome throughput of one run;
* **p99 verdict latency** — 99th percentile of per-session wall seconds
  from admission to retirement (observational; the canonical report
  excludes it, so it never affects replay identity);
* **degraded / evicted rates** under the fault schedule.

Shape checks encode the issue's acceptance criteria literally: zero
crashed sessions (the run completing *is* the check — session failures are
absorbed, programming errors propagate), every session terminal, every
ledger reconciling exactly, and two same-seed runs byte-identical.

Emits ``BENCH_e24.json`` (gated by ``check_serve_regression.py`` against
``baselines/BENCH_e24_baseline.json``).

Usage::

    python benchmarks/bench_e24_serve_chaos.py [--smoke]
        [--sessions S] [--fault-rate R] [--json PATH]
"""

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import WORKERS, check, write_bench_json

from repro.experiments.report import print_experiment
from repro.serve import ChaosConfig, ServiceConfig, TesterService, build_requests
from repro.serve.session import SessionState

SEED = 24
N, K, EPS = 512, 4, 0.3


def run_drill(config: ChaosConfig) -> tuple:
    """One full service run; returns (report, wall_seconds)."""
    service = TesterService(ServiceConfig(workers=WORKERS))
    for request in build_requests(config):
        service.submit(request)
    start = time.perf_counter()
    report = service.run()
    return report, time.perf_counter() - start


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI drill")
    # 50 sessions at 10% faults = 5 faulty sessions = one of each fault
    # kind, so the degraded-rate metric is never vacuously zero.
    parser.add_argument("--sessions", type=int, default=None,
                        help="population size (default 50; smoke 12)")
    parser.add_argument("--fault-rate", type=float, default=0.1)
    parser.add_argument("--json", default=None, metavar="PATH")
    args = parser.parse_args(argv)
    sessions = args.sessions if args.sessions is not None else (12 if args.smoke else 50)

    config = ChaosConfig(
        sessions=sessions, n=N, k=K, eps=EPS,
        fault_rate=args.fault_rate, seed=SEED,
    )
    report, wall = run_drill(config)
    replay, _ = run_drill(config)

    counts = report.counts()
    total = len(report.outcomes)
    terminal = all(o.state in SessionState.TERMINAL for o in report.outcomes)
    ledgers_exact = all(
        o.samples_total == sum(o.attempt_samples) for o in report.outcomes
    )
    latencies = np.asarray([o.wall_seconds for o in report.outcomes])
    p99 = float(np.percentile(latencies, 99)) if total else 0.0
    throughput = total / wall if wall > 0 else 0.0
    degraded_rate = counts["DEGRADED"] / total if total else 0.0
    evicted_rate = counts["EVICTED"] / total if total else 0.0
    replay_identical = report.canonical_json() == replay.canonical_json()

    rows = [
        [state, counts[state], round(counts[state] / total, 4) if total else 0.0]
        for state in (*SessionState.TERMINAL, "REJECTED")
    ]
    print_experiment(
        f"E24: {sessions}-session chaos drill, fault rate "
        f"{config.fault_rate:.0%}, n={N}, k={K}, eps={EPS}",
        ["outcome", "count", "rate"],
        rows,
    )
    print(f"  wall          : {wall:.3f}s ({throughput:.1f} sessions/s)")
    print(f"  rounds        : {report.rounds}")
    print(f"  p99 latency   : {p99 * 1e3:.2f} ms")

    # The issue's acceptance criteria, as shape checks.
    check("all sessions reached a terminal state", terminal and total == sessions)
    check("every ledger reconciles exactly", ledgers_exact)
    check("same-seed replay is byte-identical", replay_identical)
    check("faults produced non-verdict outcomes",
          config.fault_rate == 0.0
          or counts["DEGRADED"] + counts["EVICTED"] > 0)
    check("healthy majority still gets verdicts",
          counts["VERDICT"] >= total // 2)

    write_bench_json(
        "e24",
        params={
            "sessions": sessions, "n": N, "k": K, "eps": EPS,
            "fault_rate": config.fault_rate, "seed": SEED,
            "workers": WORKERS,
        },
        columns=["outcome", "count", "rate"],
        rows=rows,
        metrics={
            "sessions_per_second": round(throughput, 2),
            "p99_latency_seconds": round(p99, 6),
            "degraded_rate": round(degraded_rate, 4),
            "evicted_rate": round(evicted_rate, 4),
            "rounds": report.rounds,
            "replay_identical": replay_identical,
        },
        path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
