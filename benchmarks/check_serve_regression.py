"""CI serve-smoke gate: service throughput, tail latency, and determinism.

Compares a freshly produced ``BENCH_e24.json`` (see
``bench_e24_serve_chaos.py``) against
``benchmarks/baselines/BENCH_e24_baseline.json``.  Three gates:

* **throughput** — fresh ``sessions_per_second`` must stay above
  ``baseline / factor`` (default factor 2.0; the baseline already carries
  ~1.5x headroom for slower CI hosts);
* **tail latency** — fresh ``p99_latency_seconds`` must stay below
  ``factor × baseline``;
* **determinism** — the fresh run's ``replay_identical`` flag must be
  true, and its degraded+evicted rate must stay at or below the fault
  rate plus slack (faults may degrade sessions; healthy sessions may
  not silently fail).  Neither takes a factor: correctness never
  regresses with the hardware.

``REPRO_PERF_FACTOR`` overrides ``--factor`` (e.g. a known-slow runner).

Usage::

    python benchmarks/check_serve_regression.py BENCH_e24.json
        [--baseline PATH] [--factor 2.0]
"""

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_e24_baseline.json"

#: Non-verdict outcomes beyond the injected fault fraction that the gate
#: tolerates (a borderline contamination session may legitimately evict).
OUTCOME_SLACK = 0.05


def load(path: "str | Path") -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "metrics" not in data or "bench" not in data:
        raise SystemExit(f"{path}: not a BENCH_*.json payload")
    return data


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_e24.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--factor", type=float, default=None,
                        help="allowed slowdown vs baseline (default 2.0)")
    args = parser.parse_args(argv)

    factor = args.factor
    if factor is None:
        factor = float(os.environ.get("REPRO_PERF_FACTOR", "2.0"))
    if factor <= 0:
        raise SystemExit(f"factor must be positive, got {factor}")

    fresh, base = load(args.fresh), load(args.baseline)
    if fresh["bench"] != base["bench"]:
        raise SystemExit(
            f"bench mismatch: fresh={fresh['bench']!r} baseline={base['bench']!r}"
        )

    failures = []
    fm, bm = fresh["metrics"], base["metrics"]

    floor = bm["sessions_per_second"] / factor
    got = fm.get("sessions_per_second", 0.0)
    verdict = "ok" if got >= floor else "REGRESSION"
    print(f"throughput gate: {got:8.1f} sessions/s vs floor {floor:8.1f}  {verdict}")
    if got < floor:
        failures.append("throughput")

    ceiling = factor * bm["p99_latency_seconds"]
    got = fm.get("p99_latency_seconds", float("inf"))
    verdict = "ok" if got <= ceiling else "REGRESSION"
    print(f"latency gate   : {got * 1e3:8.2f} ms p99 vs ceiling "
          f"{ceiling * 1e3:8.2f} ms  {verdict}")
    if got > ceiling:
        failures.append("p99-latency")

    if not fm.get("replay_identical", False):
        print("determinism gate: replay NOT byte-identical  REGRESSION")
        failures.append("replay")
    else:
        print("determinism gate: same-seed replay byte-identical  ok")

    fault_rate = fresh["params"].get("fault_rate", 0.0)
    non_verdict = fm.get("degraded_rate", 0.0) + fm.get("evicted_rate", 0.0)
    allowed = fault_rate + OUTCOME_SLACK
    verdict = "ok" if non_verdict <= allowed else "REGRESSION"
    print(f"outcome gate   : {non_verdict:.3f} degraded+evicted vs allowed "
          f"{allowed:.3f}  {verdict}")
    if non_verdict > allowed:
        failures.append("outcome-rate")

    if failures:
        print(f"FAIL: {failures}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
