"""E1 (Table 1) — the sample-budget landscape and its crossovers.

Reproduces the Section 1.2 comparison: this paper's upper bound
(Theorem 1.1) against [ILR12], [CDGR16], the Θ(n) learn-offline baseline,
and the Theorem 1.2 lower bound, over a grid of (n, k, ε).  The shape the
paper claims: the new bound decouples n from k, beats both prior testers by
a factor growing with n, and sits within polylog of the lower bound.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.core.budget import (
    budget_table_row,
    cdgr16_budget,
    ilr12_budget,
    theorem_lower_bound,
    theorem_upper_bound,
)
from repro.experiments.report import print_experiment


GRID_N = [10**3, 10**5, 10**7, 10**9]
GRID_K = [2, 16, 128]
EPS = 0.1


def test_e01_budget_landscape(benchmark):
    rows = benchmark(
        lambda: [budget_table_row(n, k, EPS) for n in GRID_N for k in GRID_K]
    )
    print_experiment(
        "E1: sample-budget landscape (unit-constant theorem formulas), eps=0.1",
        ["n", "k", "this paper", "lower bnd", "ILR12", "CDGR16", "learn-offline"],
        [
            [r["n"], r["k"], r["this_paper_ub"], r["lower_bound"], r["ilr12"],
             r["cdgr16"], r["learn_offline"]]
            for r in rows
        ],
    )

    # Crossover table: smallest grid n where this paper wins by >= 10x.
    crossings = []
    for k in GRID_K:
        beat_ilr = next(
            (n for n in GRID_N if ilr12_budget(n, k, EPS) > 10 * theorem_upper_bound(n, k, EPS)),
            None,
        )
        beat_cdgr = next(
            (n for n in GRID_N if cdgr16_budget(n, k, EPS) > 10 * theorem_upper_bound(n, k, EPS)),
            None,
        )
        crossings.append([k, beat_ilr, beat_cdgr])
    print_experiment(
        "E1b: smallest grid n with a 10x win for this paper",
        ["k", "vs ILR12", "vs CDGR16"],
        crossings,
    )

    for k in GRID_K:
        n = GRID_N[-1]
        ours = theorem_upper_bound(n, k, EPS)
        check(f"k={k}: beats ILR12 at n=1e9", ilr12_budget(n, k, EPS) > ours)
        check(f"k={k}: beats CDGR16 at n=1e9", cdgr16_budget(n, k, EPS) > ours)
        check(f"k={k}: above the lower bound", ours >= theorem_lower_bound(n, k, EPS))
