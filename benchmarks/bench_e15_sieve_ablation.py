"""E15 (ablation) — why the sieve exists, and the corrigendum comparison.

Three variants of the pipeline on the same workloads:

* ``no-sieve`` — learn then χ²-test directly (the naive testing-by-learning
  the paper's Section 1.3 says must fail: breakpoint intervals wreck the
  completeness side);
* ``reuse`` — the paper-literal sieve reusing one sample batch across
  Phase-B rounds (the analysis the PODS'23 corrigendum flags);
* ``fresh`` — the default corrigendum-safe sieve with fresh batches per
  round.

Shape claims: no-sieve loses completeness on breakpoint-misaligned
histograms while both sieve variants keep it; all three keep soundness;
reuse is cheaper in samples.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions import families
from repro.distributions.sampling import SampleSource
from repro.experiments.report import print_experiment

N, K, EPS = 3000, 4, 0.3
TRIALS = 12
FRESH = TesterConfig.practical()
REUSE = TesterConfig.practical(fresh_sieve_samples=False)
NO_SIEVE = TesterConfig.practical(sieve_enabled=False)

VARIANTS = {
    "no-sieve": lambda src: test_histogram(src, K, EPS, config=NO_SIEVE).accept,
    "reuse (paper-literal)": lambda src: test_histogram(src, K, EPS, config=REUSE).accept,
    "fresh (default)": lambda src: test_histogram(src, K, EPS, config=FRESH).accept,
}


def run():
    complete = families.staircase(N, K, ratio=3.0).to_distribution()
    rows = []
    for name, tester in VARIANTS.items():
        acc = rej = 0
        samples = 0.0
        for seed in range(TRIALS):
            src = SampleSource(complete, rng=seed)
            acc += tester(src)
            samples += src.samples_drawn
            far = families.far_from_hk(N, K, EPS, rng=seed)
            src2 = SampleSource(far, rng=100 + seed)
            rej += not tester(src2)
            samples += src2.samples_drawn
        rows.append([name, acc / TRIALS, rej / TRIALS, samples / (2 * TRIALS)])
    return rows


def test_e15_sieve_ablation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E15: sieve ablation (n={N}, k={K}, eps={EPS}, {TRIALS} trials/side)",
        ["variant", "completeness", "soundness", "samples/trial"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    check(
        "no-sieve loses completeness (breakpoint blow-up)",
        by_name["no-sieve"][1] < 2 / 3,
    )
    check("reuse keeps completeness", by_name["reuse (paper-literal)"][1] >= 2 / 3)
    check("fresh keeps completeness", by_name["fresh (default)"][1] >= 2 / 3)
    for name in VARIANTS:
        check(f"{name} keeps soundness", by_name[name][2] >= 2 / 3)
    check(
        "reuse cheaper than fresh",
        by_name["reuse (paper-literal)"][3] < by_name["fresh (default)"][3],
    )
