"""E26 — kernel layer: per-kernel hot-path timings, identity, and memory.

Measures what the kernel tentpole claims, per available kernel
(``python`` always; ``numba`` when the ``repro[native]`` extra is
installed):

* **fast-engine seconds** on the E22 smoke grid (noisy staircase, k=32) —
  the same points as ``baselines/BENCH_e22_baseline.json``, so the gate
  (``check_kernel_regression.py``) can compute the speedup of the kernel
  layer over the pre-kernel committed baseline: ≥ 1.5× pure-numpy,
  ≥ 5× native;
* **cross-kernel identity** — the projection distance per grid point must
  agree across kernels to the last bit (max diff exactly 0.0);
* **peak memory** — tracemalloc peak of one fast-engine run per n; the
  log-log slope over the grid must stay near-linear (the O(n·k)
  preallocation contract of the sparse table / block kernels — a
  quadratic table would show slope ≈ 2);
* **serve throughput** — terminal sessions/sec of a small clean drill
  through the batched final-test path (same numbers at any kernel, the
  batches just run faster).

Also prints the per-op dispatch table (op / kernel / calls / seconds) from
the metrics registry — the data behind ``repro test --stage-timings``.

Emits ``BENCH_e26.json`` (gated by ``check_kernel_regression.py`` against
``baselines/BENCH_e22_baseline.json`` + ``baselines/BENCH_e26_baseline.json``).

Usage::

    python benchmarks/bench_e26_kernel_layer.py [--smoke]
        [--k K] [--sessions S] [--json PATH]
"""

import argparse
import math
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import WORKERS, check, write_bench_json

from repro.distributions import families
from repro.distributions.projection import distance_to_histogram
from repro.experiments.report import print_experiment
from repro.kernels import available_kernels, kernel_seconds_snapshot, use_kernel
from repro.serve import ChaosConfig, ServiceConfig, TesterService, build_requests
from repro.serve.session import SessionState

SEED = 22  # deliberately the E22 seed: same pmfs as the committed baseline
NOISE = 0.05


def make_pmf(n: int, k: int) -> np.ndarray:
    """The E22 noisy staircase (identical construction, same seed)."""
    base = families.staircase(n, k).to_distribution().pmf
    noise = np.random.default_rng([SEED, n, k]).dirichlet(np.ones(n))
    return (1.0 - NOISE) * base + NOISE * noise


#: Timing reps per (n, kernel).  Background load only ever *inflates* a
#: rep, so the per-point minimum converges to true cost from above; the
#: rep loop runs outermost (interleaved across the whole grid) so one
#: sustained load burst on a shared host can inflate at most one rep of
#: any point instead of all of them.
REPS = 3


def time_fast_once(pmf: np.ndarray, k: int, kernel: str) -> tuple[float, float]:
    """(seconds, distance) of one fast-engine run under one kernel."""
    with use_kernel(kernel):
        start = time.perf_counter()
        dist = distance_to_histogram(pmf, k, engine="fast")
        return time.perf_counter() - start, dist


def peak_memory(pmf: np.ndarray, k: int, kernel: str) -> int:
    """tracemalloc peak (bytes) of one fast-engine run."""
    with use_kernel(kernel):
        tracemalloc.start()
        try:
            distance_to_histogram(pmf, k, engine="fast")
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    return int(peak)


def serve_throughput(sessions: int, kernel: str) -> tuple[float, int]:
    """(sessions/sec, terminal sessions) of one clean drill."""
    config = ChaosConfig(sessions=sessions, fault_rate=0.0, seed=26, kernel=kernel)
    service = TesterService(ServiceConfig(workers=WORKERS))
    for request in build_requests(config):
        service.submit(request)
    start = time.perf_counter()
    report = service.run()
    wall = time.perf_counter() - start
    terminal = sum(
        1 for o in report.outcomes if o.state in SessionState.TERMINAL
    )
    return terminal / wall, terminal


def loglog_slope(xs: list[float], ys: list[float]) -> float:
    if len(xs) < 2:
        return math.nan
    return float(np.polyfit(np.log(xs), np.log(ys), 1)[0])


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI grid (<90 s)")
    parser.add_argument("--k", type=int, default=32, help="histogram pieces")
    parser.add_argument("--sessions", type=int, default=None,
                        help="serve-drill population (default 24; smoke 8)")
    parser.add_argument("--json", default=None, help="output path for BENCH_e26.json")
    args = parser.parse_args(argv)

    sizes = [1 << e for e in (range(8, 12) if args.smoke else range(8, 13))]
    sessions = args.sessions if args.sessions is not None else (8 if args.smoke else 24)
    kernels = available_kernels()

    pmfs = {n: make_pmf(n, args.k) for n in sizes}
    seconds_by_kernel: dict[str, dict[str, float]] = {
        k: {str(n): math.inf for n in sizes} for k in kernels
    }
    dists_by_n: dict[int, dict[str, float]] = {n: {} for n in sizes}
    for _ in range(REPS):
        for n in sizes:
            for kernel in kernels:
                secs, dist = time_fast_once(pmfs[n], args.k, kernel)
                seconds_by_kernel[kernel][str(n)] = min(
                    seconds_by_kernel[kernel][str(n)], secs
                )
                dists_by_n[n][kernel] = dist

    rows = []
    peaks_by_n: dict[str, int] = {}
    max_kernel_diff = 0.0
    for n in sizes:
        dists = dists_by_n[n]
        diff = max(dists.values()) - min(dists.values())
        max_kernel_diff = max(max_kernel_diff, diff)
        peaks_by_n[str(n)] = peak_memory(pmfs[n], args.k, kernels[-1])
        row = [n] + [seconds_by_kernel[k][str(n)] for k in kernels]
        row += [diff, peaks_by_n[str(n)] / 1e6, dists[kernels[0]]]
        rows.append(row)

    columns = (
        ["n"] + [f"{k} s" for k in kernels] + ["|kdiff|", "peak MB", "distance"]
    )
    print_experiment(
        f"E26: kernel layer (k={args.k}, kernels={','.join(kernels)})",
        columns,
        rows,
    )

    mem_slope = loglog_slope(
        [float(n) for n in sizes], [float(peaks_by_n[str(n)]) for n in sizes]
    )
    throughput, terminal = serve_throughput(sessions, kernels[-1])

    print(f"  peak-memory log-log slope: {mem_slope:.2f} (O(n*k) => ~1)")
    print(f"  serve throughput: {throughput:.2f} sessions/s ({terminal} terminal)")
    print("  kernel dispatches (op / kernel / calls / seconds):")
    for op, kernel, calls, secs in kernel_seconds_snapshot():
        print(f"    {op:<28} {kernel:<8} {calls:>9,} calls  {secs:>9.4f}s")

    check("cross-kernel identity (diff == 0)", max_kernel_diff == 0.0)
    check("memory near-linear in n (slope <= 1.5)", mem_slope <= 1.5)
    check("all drill sessions terminal", terminal == sessions)

    write_bench_json(
        "e26",
        params={
            "k": args.k,
            "sizes": sizes,
            "seed": SEED,
            "noise": NOISE,
            "smoke": bool(args.smoke),
            "sessions": sessions,
            "kernels": list(kernels),
        },
        columns=columns,
        rows=rows,
        metrics={
            # Same key layout as BENCH_e22 so the speedup gate can divide
            # the committed pre-kernel baseline by these, per kernel.
            "fast_seconds_by_n_python": seconds_by_kernel["python"],
            **(
                {"fast_seconds_by_n_numba": seconds_by_kernel["numba"]}
                if "numba" in seconds_by_kernel
                else {}
            ),
            "max_kernel_diff": max_kernel_diff,
            "peak_bytes_by_n": peaks_by_n,
            "peak_memory_slope": mem_slope,
            "serve_sessions_per_sec": throughput,
        },
        path=args.json,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
