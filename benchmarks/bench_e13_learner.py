"""E13 (Fig 9) — the Lemma 3.5 learner's χ² error.

Mean ``dχ²(D̃ᴶ ‖ D̂)`` (target: the flattening of D off its breakpoint
intervals) versus the sample size m, against the lemma's ``ℓ/m`` bound, plus
the ablation against the unsmoothed (maximum-likelihood) estimator whose χ²
error blows up on under-sampled intervals.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.core.learner import empirical_estimate, laplace_estimate
from repro.distributions import families
from repro.distributions.distances import chi2_distance
from repro.distributions.histogram import breakpoint_intervals, flatten_outside
from repro.distributions.sampling import SampleSource
from repro.experiments.report import format_series, print_experiment
from repro.util.intervals import Partition

N, PIECES = 2000, 40
GRID_M = [2_000, 8_000, 32_000, 128_000]
REPEATS = 20


def run():
    dist = families.staircase(N, 5, ratio=2.0).to_distribution()
    part = Partition.equal_width(N, PIECES)
    target = flatten_outside(dist, part, breakpoint_intervals(dist, part))
    rows = []
    for m in GRID_M:
        laplace_errs, ml_infinite = [], 0
        for seed in range(REPEATS):
            counts = SampleSource(dist, rng=seed).draw_counts(m)
            laplace_errs.append(
                chi2_distance(target.pmf, laplace_estimate(counts, part).to_pmf())
            )
            ml = empirical_estimate(counts, part)
            if np.isinf(chi2_distance(target.pmf, ml.to_pmf())):
                ml_infinite += 1
        rows.append([m, float(np.mean(laplace_errs)), PIECES / m, ml_infinite])
    return rows


def test_e13_learner(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E13: Lemma 3.5 learner chi2 error (n={N}, l={PIECES} intervals, {REPEATS} reps)",
        ["m", "mean chi2 (Laplace)", "lemma bound l/m", "ML estimator inf count"],
        rows,
    )
    print(format_series([r[0] for r in rows], [r[1] for r in rows]))
    for m, err, bound, _ in rows:
        check(f"m={m}: error <= 2 l/m", err <= 2 * bound)
    errs = [r[1] for r in rows]
    check("error decreasing in m", all(a > b for a, b in zip(errs, errs[1:])))
    check(
        "~1/m scaling over the sweep",
        errs[0] / errs[-1] > 0.25 * (GRID_M[-1] / GRID_M[0]),
    )
