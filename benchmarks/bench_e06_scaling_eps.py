"""E6 (Fig 5) — empirical sample complexity vs ε.

Fixed n and k, sweeping the proximity parameter.  Theorem 3.1 predicts
between ε⁻² (the √n term) and ε⁻³ (the k term) growth.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, check

from repro.core.tester import test_histogram
from repro.distributions import families
from repro.experiments import empirical_sample_complexity
from repro.experiments.report import format_series, print_experiment

N, K = 4000, 4
GRID_EPS = [0.4, 0.3, 0.2, 0.15]


def complexity_at(eps: float, rng: int):
    family = lambda scale: (
        lambda src: test_histogram(src, K, eps, config=CONFIG.scaled(scale)).accept
    )
    return empirical_sample_complexity(
        family,
        complete=lambda g: families.staircase(N, K).to_distribution(),
        far=lambda g: families.far_from_hk(N, K, eps, g),
        trials=9,
        bisection_steps=5,
        rng=rng,
    )


def run():
    return [complexity_at(eps, rng=i) for i, eps in enumerate(GRID_EPS)]


def test_e06_scaling_eps(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    samples = [r.samples for r in results]
    rows = [
        [eps, r.samples, r.scale, r.samples * eps**2]
        for eps, r in zip(GRID_EPS, results)
    ]
    print_experiment(
        f"E6: empirical sample complexity vs eps (n={N}, k={K})",
        ["eps", "samples (2/3 frontier)", "budget scale", "samples*eps^2"],
        rows,
    )
    print(format_series(GRID_EPS, samples))
    check("complexity increases as eps shrinks", samples[-1] > samples[0])
    # Between eps^-1.5 and eps^-4 over the 0.4 -> 0.15 sweep.
    ratio = samples[-1] / samples[0]
    predicted_sq = (0.4 / 0.15) ** 2
    check("eps growth at least ~eps^-1.5", ratio > (0.4 / 0.15) ** 1.2)
    check("eps growth at most ~eps^-4", ratio < predicted_sq**2)
