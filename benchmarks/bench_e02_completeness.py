"""E2 (Fig 1) — completeness of Algorithm 1.

Acceptance rate on true k-histograms across k, for two completeness
families.  Theorem 3.1's guarantee: rate ≥ 2/3 everywhere.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import BACKEND, CONFIG, EPS, N, TRIALS, WORKERS, check

from repro.experiments import acceptance_probability
from repro.experiments.report import print_experiment
from repro.experiments.sweeps import HistogramTester
from repro.experiments.workloads import BoundWorkload


def run_grid():
    rows = []
    for k in (1, 2, 4, 8, 16):
        for family in ("staircase", "random-histogram"):
            est = acceptance_probability(
                BoundWorkload(family, N, k, EPS),
                HistogramTester(k, EPS, CONFIG, BACKEND),
                trials=TRIALS,
                rng=k,
                workers=WORKERS,
            )
            rows.append([k, family, est.rate, est.ci_low, est.mean_samples])
    return rows


def test_e02_completeness(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print_experiment(
        f"E2: completeness acceptance rate "
        f"(n={N}, eps={EPS}, backend={BACKEND}, {TRIALS} trials)",
        ["k", "family", "accept rate", "99% CI low", "samples/trial"],
        rows,
    )
    for k, family, rate, _, _ in rows:
        check(f"k={k} {family}: rate >= 2/3", rate >= 2 / 3)
