"""E16 (Table 6) — running time of Algorithm 1.

Theorem 3.1 claims time ``√n·poly(log k, 1/ε) + poly(k, 1/ε)`` — in this
simulation, time per invocation should grow mildly (near-linearly in the
count-vector length n, since counts are materialised) and stay far from
quadratic.  This is the one experiment where pytest-benchmark's timing
machinery is the measurement itself.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, check

from repro.core.tester import test_histogram
from repro.distributions import families
from repro.experiments.report import print_experiment

K, EPS = 4, 0.3
GRID_N = [1000, 4000, 16000, 64000]


def one_test(dist, seed):
    return test_histogram(dist, K, EPS, config=CONFIG, rng=seed)


def test_e16_runtime(benchmark):
    rows = []
    for n in GRID_N:
        dist = families.staircase(n, K).to_distribution()
        start = time.perf_counter()
        reps = 3
        for seed in range(reps):
            one_test(dist, seed)
        elapsed = (time.perf_counter() - start) / reps
        rows.append([n, elapsed, elapsed / n * 1e6])
    print_experiment(
        f"E16: wall-clock per invocation (k={K}, eps={EPS}, mean of 3)",
        ["n", "seconds/test", "us per domain point"],
        rows,
    )
    times = [r[1] for r in rows]
    check("64x n costs < 128x time (sub-quadratic)", times[-1] / max(times[0], 1e-9) < 128)

    # The benchmark fixture times the n=4000 case precisely.
    dist = families.staircase(4000, K).to_distribution()
    benchmark(one_test, dist, 0)
