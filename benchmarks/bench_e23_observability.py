"""E23 — per-stage sample-budget breakdown vs the Theorem 3.1 closed form.

Runs Algorithm 1 under a :class:`~repro.observability.trace.RecordingTracer`
across a runnable slice of the E1 landscape grid and compares the *measured*
integer per-stage draws (partition / learn / sieve / χ²) against the
``algorithm1_budget`` closed form.  Because the sample ledger reconciles on
every exit path, the printed stage columns sum exactly to the total — the
table is an audit, not an estimate.

Shape checks encode the accounting contract:

* every grid point's total stays within the closed-form budget
  (utilisation ≤ 1 — the cap the ledger enforces);
* the sieve dominates the draw budget (it is the Θ(√n·k/ε² + k²/ε⁴) term);
* one trace file is written and re-validated against the JSONL schema.

Also measures the tracer-off wall-clock of one standard tester call
(median of ``--reps``), which ``check_trace_overhead.py`` gates against the
committed baseline (``baselines/BENCH_e23_baseline.json``): the no-op
tracer must keep the instrumented pipeline within 5% of the PR-3-era
timing (× ``REPRO_PERF_FACTOR`` headroom for slower hosts).

Emits ``BENCH_e23.json`` and ``TRACE_e23.jsonl``.

Usage::

    python benchmarks/bench_e23_observability.py [--smoke]
        [--reps R] [--json PATH] [--trace PATH]
"""

import argparse
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, EPS, K, N, check, write_bench_json

from repro.core.budget import algorithm1_budget
from repro.core.tester import test_histogram
from repro.distributions import families
from repro.experiments.report import print_experiment
from repro.observability.trace import (
    NULL_TRACER,
    RecordingTracer,
    validate_trace,
    write_jsonl,
)

SEED = 23
FULL_GRID = [(n, k) for n in (1_000, 4_000, 16_000) for k in (2, 8)]
SMOKE_GRID = [(1_000, 2), (4_000, 4)]
STAGES = ("partition", "learn", "sieve", "check", "chi2", "plugin")


def breakdown_row(n: int, k: int) -> list:
    dist = families.staircase(n, k).to_distribution()
    tracer = RecordingTracer()
    verdict = test_histogram(dist, k, EPS, config=CONFIG, rng=SEED, trace=tracer)
    budget = algorithm1_budget(n, k, EPS, config=CONFIG)
    util = verdict.samples_used / budget if budget else 0.0
    per_stage = [verdict.stage_samples.get(s, 0) for s in STAGES]
    return [n, k, *per_stage, verdict.samples_used, int(budget), round(util, 4)]


def time_tester(reps: int) -> tuple[float, float]:
    """(tracer-off, tracer-on) median seconds of one standard tester call."""
    dist = families.staircase(N, K).to_distribution()

    def once(tracer) -> float:
        start = time.perf_counter()
        test_histogram(dist, K, EPS, config=CONFIG, rng=SEED, trace=tracer)
        return time.perf_counter() - start

    off = statistics.median(once(NULL_TRACER) for _ in range(reps))
    on = statistics.median(once(RecordingTracer()) for _ in range(reps))
    return off, on


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI grid")
    parser.add_argument("--reps", type=int, default=None,
                        help="timing repetitions (default 5; smoke 3)")
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument("--trace", default="TRACE_e23.jsonl", metavar="PATH")
    args = parser.parse_args(argv)
    grid = SMOKE_GRID if args.smoke else FULL_GRID
    reps = args.reps if args.reps is not None else (3 if args.smoke else 5)

    rows = [breakdown_row(n, k) for n, k in grid]
    columns = ["n", "k", *STAGES, "total", "budget(Thm 3.1)", "utilisation"]
    print_experiment(
        f"E23: integer per-stage draws vs algorithm1_budget, eps={EPS}",
        columns,
        rows,
    )

    utils = [row[-1] for row in rows]
    check("all points within the closed-form budget", all(u <= 1.0 for u in utils))
    # Dominance only applies to full-pipeline points; k·log k/ε ≈ n points
    # route to the plug-in fallback (the whole point of the plugin column).
    sieve_share = [
        row[2 + STAGES.index("sieve")] / row[-3]
        for row in rows
        if row[2 + STAGES.index("plugin")] == 0
    ]
    check("sieve dominates the full-pipeline draw budget",
          all(s >= 0.5 for s in sieve_share))

    # One trace file for the schema gate: re-run the first grid point traced.
    n, k = grid[0]
    tracer = RecordingTracer()
    test_histogram(
        families.staircase(n, k).to_distribution(), k, EPS,
        config=CONFIG, rng=SEED, trace=tracer,
    )
    write_jsonl(args.trace, tracer.export())
    events = validate_trace(args.trace)
    print(f"  wrote {args.trace} ({events} events, schema-valid)")
    check("trace has a ledger event", any(
        e.name.endswith("ledger") for e in tracer.events
    ))

    off, on = time_tester(reps)
    print(f"  tester wall clock: tracer off {off:.3f}s, recording {on:.3f}s "
          f"(median of {reps})")

    write_bench_json(
        "e23",
        params={"grid": grid, "eps": EPS, "seed": SEED, "smoke": args.smoke,
                "reps": reps, "timing_point": {"n": N, "k": K}},
        columns=columns,
        rows=rows,
        metrics={
            "tracer_off_seconds": off,
            "tracer_on_seconds": on,
            "trace_file": str(args.trace),
            "trace_events": events,
            "max_utilisation": max(utils),
        },
        path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
