"""E9 (Fig 7) — Lemma 4.4: random permutations keep supports sprinkled.

Monte-Carlo estimate of ``Pr[cover(σ(S)) ≤ 6ℓ/7]`` against the lemma's
``7ℓ/n`` bound, plus the mean cover against the proof's border-count
expectation ``ℓ(1 − ℓ/n)``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.experiments.report import print_experiment
from repro.lowerbounds.support_size import cover_experiment, expected_cover

GRID = [
    (2000, 20),
    (2000, 100),
    (2000, 250),
    (8000, 100),
    (8000, 400),
    (8000, 1000),
]
TRIALS = 400


def run():
    return [cover_experiment(n, ell, TRIALS, rng=i) for i, (n, ell) in enumerate(GRID)]


def test_e09_cover_lemma(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [r.n, r.ell, r.empirical_probability, r.lemma_bound, r.mean_cover,
         expected_cover(r.ell, r.n)]
        for r in results
    ]
    print_experiment(
        f"E9: Lemma 4.4 cover probabilities ({TRIALS} permutations/cell)",
        ["n", "l", "P[cover<=6l/7]", "bound 7l/n", "mean cover", "E border count"],
        rows,
    )
    for r in results:
        check(
            f"n={r.n} l={r.ell}: bound holds",
            r.empirical_probability <= r.lemma_bound + 1e-9,
        )
        check(
            f"n={r.n} l={r.ell}: mean cover ~ l(1-l/n)",
            abs(r.mean_cover - expected_cover(r.ell, r.n)) < 0.1 * r.ell + 2,
        )
