"""CI closeness gate: error calibration, baseline blindness, wall clock.

Compares a freshly produced ``BENCH_e28.json`` (see
``bench_e28_closeness.py``) against
``benchmarks/baselines/BENCH_e28_baseline.json``.  Three gates:

* **calibration** — the fresh run's worst closeness error count (either
  side) must stay within its own exact binomial bound (per-trial rate 1/3
  at flake probability 1e-6).  Absolute: correctness never takes a
  hardware factor;
* **separation** — the naive double-identity baseline must keep accepting
  the ε-far pairs (at least ``trials − binomial bound`` of them).  Also
  absolute — if the baseline suddenly *rejects* far pairs, the instance
  family no longer isolates the two-sample question and E28's headline
  comparison is meaningless;
* **wall clock** — per shared domain size, fresh closeness wall seconds
  must stay within ``--factor`` (default 2.0, overridable by
  ``REPRO_PERF_FACTOR`` for known-slow runners) of the baseline.

Usage::

    python benchmarks/check_closeness_regression.py BENCH_e28.json
        [--baseline PATH] [--factor 2.0]
"""

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_e28_baseline.json"


def load(path: "str | Path") -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "metrics" not in data or "bench" not in data:
        raise SystemExit(f"{path}: not a BENCH_*.json payload")
    return data


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_e28.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--factor", type=float, default=None,
                        help="wall-clock headroom vs baseline (default 2.0; "
                        "REPRO_PERF_FACTOR overrides)")
    args = parser.parse_args(argv)

    factor = args.factor
    if factor is None:
        factor = float(os.environ.get("REPRO_PERF_FACTOR", "2.0"))
    if factor <= 0:
        raise SystemExit(f"factor must be positive, got {factor}")

    fresh, base = load(args.fresh), load(args.baseline)
    if fresh["bench"] != base["bench"]:
        raise SystemExit(
            f"bench mismatch: fresh={fresh['bench']!r} baseline={base['bench']!r}"
        )

    failures = []
    fm = fresh["metrics"]

    worst = fm.get("worst_closeness_errors")
    bound = fm.get("max_errors_allowed")
    if worst is None or bound is None:
        raise SystemExit("fresh payload missing error metrics")
    verdict = "ok" if worst <= bound else "REGRESSION"
    print(f"calibration gate: worst side {worst} errors vs binomial bound "
          f"{bound}  {verdict}")
    if worst > bound:
        failures.append("calibration")

    accepts = fm.get("fewest_naive_far_accepts")
    blind_bound = fm.get("naive_blind_bound")
    if accepts is None or blind_bound is None:
        raise SystemExit("fresh payload missing separation metrics")
    verdict = "ok" if accepts >= blind_bound else "REGRESSION"
    print(f"separation gate : naive baseline accepted {accepts} far pairs "
          f"vs required {blind_bound}  {verdict}")
    if accepts < blind_bound:
        failures.append("separation")

    base_times = base["metrics"].get("closeness_seconds_by_n", {})
    fresh_times = fm.get("closeness_seconds_by_n", {})
    shared = sorted(set(base_times) & set(fresh_times), key=int)
    if not shared:
        raise SystemExit("no shared domain sizes between fresh run and baseline")
    for n in shared:
        allowed = base_times[n] * factor
        ok = fresh_times[n] <= allowed
        print(f"wall gate @ n={n}: {fresh_times[n]:.3f}s vs allowed "
              f"{allowed:.3f}s ({base_times[n]:.3f}s x {factor})  "
              f"{'ok' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(f"wall@{n}")

    if failures:
        print(f"FAIL: {', '.join(failures)}")
        return 1
    print("all closeness gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
