"""E18 (ablation) — why the ``A_ε`` truncation exists.

The [ADK15] statistic sums only over ``A_ε = {i : D*(i) ≥ ε/(50n)}``.
Without the truncation, a reference that is *slightly* underestimated on a
light region contributes terms ``(N_i − mD*)²/(mD*)`` with a tiny
denominator: the statistic's mean and variance on true histograms explode
and completeness dies.  With it, the skipped region can hide at most
``ε/50`` of TV mass — harmless against the ``13ε/30`` soundness margin.

The ablation plants a reference whose light tail is underestimated 3× (a
learner-like error pattern) and compares the statistic with truncation on
vs off, and then demonstrates the soundness side is unharmed: mass hidden
*below* the cut stays invisible by design and is bounded by ε/50.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.core.chi2 import active_mask, interval_statistics
from repro.distributions.discrete import DiscreteDistribution
from repro.experiments.report import print_experiment
from repro.util.intervals import Partition

N, EPS = 4000, 0.25
BATCHES = 100


def build_pair():
    """A true distribution with a very light tail, and a reference that
    underestimates that tail 6x (a learner-like error pattern).

    Numbers are placed deliberately: the tail's *reference* values fall
    below the ``ε/(50n)`` cut (so ``A_ε`` hides them), while the tail's
    *true* mass stays near the ε/50 budget the soundness argument allows.
    """
    tail_value = 4.0 * EPS / (50.0 * N)  # true tail: ~2x the cut per point
    pmf = np.full(N, tail_value)
    heavy_mass = 1.0 - tail_value * (N // 2)
    pmf[: N // 2] = heavy_mass / (N // 2)
    dist = DiscreteDistribution(pmf)
    ref = dist.pmf.copy()
    ref[N // 2 :] /= 6.0  # now below the A_eps cut
    ref[: N // 2] += (dist.pmf[N // 2 :] - ref[N // 2 :]).sum() / (N // 2)
    return dist, DiscreteDistribution(ref)


def run():
    dist, ref = build_pair()
    m = 64.0 * np.sqrt(N) / EPS**2
    threshold = m * EPS**2 / 8.0
    part = Partition.trivial(N)
    gen = np.random.default_rng(0)

    rows = []
    for name, mask in [
        ("with A_eps", active_mask(ref.pmf, EPS, 1 / 50)),
        ("no truncation", np.ones(N, dtype=bool)),
    ]:
        zs = [
            float(
                interval_statistics(
                    dist.sample_counts_poissonized(m, gen), m, ref.pmf, part, mask
                ).sum()
            )
            for _ in range(BATCHES)
        ]
        reject_rate = float(np.mean([z > threshold for z in zs]))
        rows.append([name, float(np.mean(zs)), float(np.std(zs)), threshold, reject_rate])
    return rows


def test_e18_truncation_ablation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E18: A_eps truncation ablation (n={N}, eps={EPS}, tail underestimated 6x)",
        ["variant", "E[Z]", "std Z", "threshold", "false-reject rate"],
        rows,
    )
    with_trunc, without = rows[0], rows[1]
    check("truncated statistic well below threshold", with_trunc[1] < with_trunc[3] / 2)
    check("untruncated statistic blows past threshold", without[1] > without[3])
    check("truncation rescues completeness", with_trunc[4] <= 0.1 < without[4])

    # Soundness side: mass hidden below the cut is bounded by eps/50.
    dist, ref = build_pair()
    mask = active_mask(ref.pmf, EPS, 1 / 50)
    hidden = float(dist.pmf[~mask].sum())
    print(f"  TV mass invisible below the cut: {hidden:.5f} (bound eps/50 = {EPS/50:.5f})")
    check("hidden mass within eps/50-ish", hidden <= 2.1 * EPS / 50)
