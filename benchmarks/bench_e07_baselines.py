"""E7 (Table 2) — head-to-head against the prior-work testers.

All four testers run at their own natural budgets on the same completeness
and soundness workloads; the table reports success rates and measured
samples.  The published asymptotic budgets are charted alongside at scale
(where the paper's claimed ordering — ours ≪ CDGR16 ≪ ILR12 for large n —
must hold).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, EPS, K, N, TRIALS, check

from repro.baselines import cdgr16_test, ilr12_test, learn_offline_test
from repro.core.budget import (
    algorithm1_budget,
    cdgr16_budget,
    ilr12_budget,
    learn_offline_budget,
    theorem_upper_bound,
)
from repro.core.tester import test_histogram
from repro.distributions import families
from repro.experiments import success_probability
from repro.experiments.report import print_experiment

TESTERS = {
    "this-paper": lambda src: test_histogram(src, K, EPS, config=CONFIG).accept,
    "ilr12": lambda src: ilr12_test(src, K, EPS).accept,
    "cdgr16": lambda src: cdgr16_test(src, K, EPS).accept,
    "learn-offline": lambda src: learn_offline_test(src, K, EPS).accept,
}


def run():
    complete = lambda g: families.staircase(N, K).to_distribution()
    far = lambda g: families.far_from_hk(N, K, EPS, g)
    rows = []
    for name, tester in TESTERS.items():
        comp = success_probability(complete, tester, True, TRIALS, rng=1)
        sound = success_probability(far, tester, False, TRIALS, rng=2)
        rows.append(
            [name, comp.rate, sound.rate, 0.5 * (comp.mean_samples + sound.mean_samples)]
        )
    return rows


def test_e07_baseline_head_to_head(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E7: tester head-to-head (n={N}, k={K}, eps={EPS}, {TRIALS} trials/side)",
        ["tester", "completeness", "soundness", "samples/trial"],
        rows,
    )
    for name, comp, sound, _ in rows:
        check(f"{name}: both sides >= 2/3", comp >= 2 / 3 and sound >= 2 / 3)

    big_n = 10**8
    formula_rows = [
        ["this-paper", theorem_upper_bound(big_n, K, EPS)],
        ["ilr12", ilr12_budget(big_n, K, EPS)],
        ["cdgr16", cdgr16_budget(big_n, K, EPS)],
        ["learn-offline", learn_offline_budget(big_n, EPS)],
    ]
    print_experiment(
        f"E7b: published budget formulas at n={big_n:,} (who wins at scale)",
        ["tester", "samples (formula)"],
        formula_rows,
    )
    ours = formula_rows[0][1]
    check("formula ordering: ours < cdgr16 < ilr12", ours < formula_rows[2][1] < formula_rows[1][1])
    check("ours sublinear vs learn-offline", ours < formula_rows[3][1] / 100)
