"""CI kernel-layer gate: speedup, identity, memory, and drift.

Compares a freshly produced ``BENCH_e26.json`` (see
``bench_e26_kernel_layer.py``) against **two** committed baselines:

* ``baselines/BENCH_e22_baseline.json`` — the pre-kernel fast-engine
  times.  The **speedup gate** divides the baseline's largest-``n`` time
  by the fresh run's time at the same ``n`` and requires ≥ 1.5× for the
  ``python`` kernel and ≥ 5× for ``numba`` (when the fresh run measured
  it).  The largest grid point is the one the kernel layer exists for —
  smaller sizes are dispatch-overhead-dominated and noisy.
* ``baselines/BENCH_e26_baseline.json`` — the post-kernel reference.  The
  **drift gate** requires every fresh python-kernel time to stay within
  ``--factor`` of this baseline's (which already carries 1.5× headroom
  for slower CI hosts), so the kernel layer itself can't quietly rot.

Two ungated-by-factor correctness checks ride along:

* ``max_kernel_diff`` must be exactly ``0.0`` — ``kernel`` is a
  fingerprint-safe knob, so cross-kernel results are byte-identical,
  not merely close;
* ``peak_memory_slope`` must stay ≤ 1.5 — the sparse-table / block-table
  preallocation contract is O(n·k); a quadratic table would show ≈ 2.

``REPRO_PERF_FACTOR`` overrides ``--factor`` on the *timing* gates only
(speedup thresholds are divided by ``factor / 2`` so the default keeps
the literal 1.5×/5× bars while a known-slow runner can loosen both
timing gates together); identity and memory never loosen.

Usage::

    python benchmarks/check_kernel_regression.py BENCH_e26.json
        [--e22-baseline PATH] [--baseline PATH] [--factor 2.0]
"""

import argparse
import json
import os
import sys
from pathlib import Path

BASELINES = Path(__file__).parent / "baselines"
DEFAULT_E22 = BASELINES / "BENCH_e22_baseline.json"
DEFAULT_E26 = BASELINES / "BENCH_e26_baseline.json"

#: Required speedup over the pre-kernel E22 baseline at the largest
#: shared grid point, per kernel (the ISSUE's acceptance bars).
SPEEDUP_REQUIRED = {"python": 1.5, "numba": 5.0}


def load(path: "str | Path") -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "metrics" not in data or "bench" not in data:
        raise SystemExit(f"{path}: not a BENCH_*.json payload")
    return data


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_e26.json")
    parser.add_argument("--e22-baseline", default=DEFAULT_E22,
                        help="pre-kernel times the speedup gate divides")
    parser.add_argument("--baseline", default=DEFAULT_E26,
                        help="post-kernel times the drift gate compares")
    parser.add_argument("--factor", type=float, default=None,
                        help="allowed slowdown vs baselines (default 2.0)")
    args = parser.parse_args(argv)

    factor = args.factor
    if factor is None:
        factor = float(os.environ.get("REPRO_PERF_FACTOR", "2.0"))
    if factor <= 0:
        raise SystemExit(f"factor must be positive, got {factor}")

    fresh = load(args.fresh)
    e22 = load(args.e22_baseline)
    e26 = load(args.baseline)
    if fresh["bench"] != "e26":
        raise SystemExit(f"fresh payload is {fresh['bench']!r}, expected 'e26'")
    if e22["bench"] != "e22" or e26["bench"] != "e26":
        raise SystemExit("baseline bench tags do not match e22/e26")

    failures = []
    pre = e22["metrics"].get("fast_seconds_by_n", {})

    # Speedup gate: largest grid point shared with the pre-kernel baseline.
    for kernel, required in SPEEDUP_REQUIRED.items():
        times = fresh["metrics"].get(f"fast_seconds_by_n_{kernel}")
        if times is None:
            if kernel == "python":
                raise SystemExit("fresh run has no python-kernel timings")
            print(f"speedup gate [{kernel}]: skipped (kernel not measured)")
            continue
        shared = sorted(set(pre) & set(times), key=int)
        if not shared:
            raise SystemExit("no shared sizes between fresh run and E22 baseline")
        n = shared[-1]
        bar = required / (factor / 2.0)
        speedup = pre[n] / times[n]
        verdict = "ok" if speedup >= bar else "REGRESSION"
        print(f"speedup gate [{kernel}]: n={n} {pre[n]:.3f}s -> {times[n]:.3f}s "
              f"= {speedup:.2f}x (>= {bar:g}x)  {verdict}")
        if speedup < bar:
            failures.append(f"speedup-{kernel}")

    # Drift gate: fresh python times vs the committed post-kernel baseline.
    post = e26["metrics"].get("fast_seconds_by_n_python", {})
    times = fresh["metrics"]["fast_seconds_by_n_python"]
    shared = sorted(set(post) & set(times), key=int)
    print(f"drift gate: fresh <= {factor:g}x E26 baseline ({len(shared)} sizes)")
    for n in shared:
        allowed = factor * post[n]
        got = times[n]
        verdict = "ok" if got <= allowed else "REGRESSION"
        print(f"  n={n:>6}: {got:8.3f}s vs allowed {allowed:8.3f}s  {verdict}")
        if got > allowed:
            failures.append(f"drift-{n}")

    # Correctness gates — never loosened by --factor.
    diff = fresh["metrics"].get("max_kernel_diff")
    print(f"identity gate: max cross-kernel diff {diff!r} (== 0.0)")
    if diff != 0.0:
        failures.append("kernel-diff")

    slope = fresh["metrics"].get("peak_memory_slope")
    print(f"memory gate: peak log-log slope {slope:.2f} (<= 1.5)")
    if not slope <= 1.5:
        failures.append("memory-slope")

    if failures:
        print(f"FAIL: {failures}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
