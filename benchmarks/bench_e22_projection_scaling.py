"""E22 — projection-engine scaling: fast oracle DP vs dense cost matrix.

Wall-clock time of :func:`repro.distributions.projection.distance_to_histogram`
on a noisy staircase (the tester's realistic near-histogram regime) as the
domain grows, n ∈ {2^8 … 2^15}, at fixed k.  Three shape checks encode the
engine's contract:

* the fast engine's log-log slope stays **well below the dense engine's
  cubic** (near-linear in practice: ~1.1–1.6 on this family);
* fast and dense agree to ≤ 1e-12 wherever both run (golden equivalence);
* ≥ 20× speedup at n = 4096, k = 32 (the tentpole acceptance bar; the dense
  time there is cubic-extrapolated unless ``--full-dense`` measures it).

The dense engine builds the full O(n²) cost matrix (O(n³) work), so it is
only timed up to ``--dense-cap`` (default 2048; smoke 512); its time is
input-independent, which makes the cubic extrapolation safe.

Emits ``BENCH_e22.json`` (see :func:`_common.write_bench_json`) for the CI
perf-regression gate (``benchmarks/check_perf_regression.py``).

Usage::

    python benchmarks/bench_e22_projection_scaling.py [--smoke]
        [--k K] [--dense-cap N] [--full-dense] [--json PATH]
"""

import argparse
import math
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import check, write_bench_json

from repro.distributions import families
from repro.distributions.projection import distance_to_histogram
from repro.experiments.report import print_experiment

SEED = 22
NOISE = 0.05
ACCEPT_N = 4096  # the acceptance-criterion point (n=4096, k=32, >=20x)
ACCEPT_SPEEDUP = 20.0


def make_pmf(n: int, k: int) -> np.ndarray:
    """Noisy staircase: a k-histogram convexly mixed with Dirichlet noise."""
    base = families.staircase(n, k).to_distribution().pmf
    noise = np.random.default_rng([SEED, n, k]).dirichlet(np.ones(n))
    return (1.0 - NOISE) * base + NOISE * noise


def time_engine(pmf: np.ndarray, k: int, engine: str) -> tuple[float, float]:
    """(seconds, distance) for one engine; best-of-3 below n=1024."""
    reps = 3 if len(pmf) < 1024 else 1
    best, dist = math.inf, math.nan
    for _ in range(reps):
        start = time.perf_counter()
        dist = distance_to_histogram(pmf, k, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, dist


def run_grid(sizes: list[int], k: int, dense_cap: int):
    rows = []
    for n in sizes:
        pmf = make_pmf(n, k)
        fast_s, fast_d = time_engine(pmf, k, "fast")
        if n <= dense_cap:
            dense_s, dense_d = time_engine(pmf, k, "dense")
            speedup, agree = dense_s / fast_s, abs(dense_d - fast_d)
        else:
            dense_s = speedup = agree = math.nan
        rows.append([n, fast_s, dense_s, speedup, agree, fast_d])
    return rows


def loglog_slope(ns: list[float], ts: list[float]) -> float:
    if len(ns) < 2:
        return math.nan
    return float(np.polyfit(np.log(ns), np.log(ts), 1)[0])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small fast grid (<60 s)")
    parser.add_argument("--k", type=int, default=32, help="histogram pieces")
    parser.add_argument(
        "--dense-cap", type=int, default=None,
        help="largest n to time the dense engine at (default 2048; smoke 512)",
    )
    parser.add_argument(
        "--full-dense", action="store_true",
        help=f"measure dense at n={ACCEPT_N} (~10 min) instead of extrapolating",
    )
    parser.add_argument("--json", default=None, help="output path for BENCH_e22.json")
    args = parser.parse_args(argv)

    sizes = [1 << e for e in (range(8, 12) if args.smoke else range(8, 16))]
    dense_cap = args.dense_cap if args.dense_cap is not None else (
        512 if args.smoke else 2048
    )
    if args.full_dense:
        dense_cap = max(dense_cap, ACCEPT_N)

    rows = run_grid(sizes, args.k, dense_cap)
    print_experiment(
        f"E22: projection scaling (k={args.k}, noisy staircase, dense<= {dense_cap})",
        ["n", "fast s", "dense s", "speedup", "|diff|", "distance"],
        rows,
    )

    fast_by_n = {row[0]: row[1] for row in rows}
    dense_rows = [row for row in rows if not math.isnan(row[2])]
    slope = loglog_slope([r[0] for r in rows], [r[1] for r in rows])

    # Speedup at the acceptance point: measured if dense ran there, else the
    # dense time is cubic-extrapolated from the largest measured dense n
    # (the dense cost-matrix build is input-independent, so this is safe).
    accept_speedup = math.nan
    accept_mode = "unmeasured"
    if ACCEPT_N in fast_by_n and dense_rows:
        top = dense_rows[-1]
        if top[0] >= ACCEPT_N:
            accept_speedup, accept_mode = top[3], "measured"
        else:
            dense_est = top[2] * (ACCEPT_N / top[0]) ** 3
            accept_speedup = dense_est / fast_by_n[ACCEPT_N]
            accept_mode = f"extrapolated from n={top[0]}"

    max_diff = max((r[4] for r in dense_rows), default=math.nan)
    check("fast log-log slope < 2.0 (sub-quadratic)", slope < 2.0)
    if dense_rows:
        check("engines agree <= 1e-12", max_diff <= 1e-12)
    if not math.isnan(accept_speedup):
        check(
            f"speedup at n={ACCEPT_N} >= {ACCEPT_SPEEDUP:.0f}x ({accept_mode})",
            accept_speedup >= ACCEPT_SPEEDUP,
        )

    write_bench_json(
        "e22",
        params={
            "k": args.k, "sizes": sizes, "dense_cap": dense_cap,
            "noise": NOISE, "seed": SEED, "smoke": bool(args.smoke),
        },
        columns=["n", "fast_s", "dense_s", "speedup", "abs_diff", "distance"],
        rows=rows,
        metrics={
            "fast_loglog_slope": slope,
            "accept_speedup": accept_speedup,
            "accept_speedup_mode": accept_mode,
            "max_engine_diff": max_diff,
            "fast_seconds_by_n": {str(n): t for n, t in fast_by_n.items()},
        },
        path=args.json,
    )
    ok = (max_diff <= 1e-12) if dense_rows else True
    return 0 if ok else 1


def test_e22_projection_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: run_grid([256, 512, 1024], 16, 512), rounds=1, iterations=1
    )
    print_experiment(
        "E22 (smoke): projection scaling",
        ["n", "fast s", "dense s", "speedup", "|diff|", "distance"],
        rows,
    )
    dense_rows = [row for row in rows if not math.isnan(row[2])]
    assert dense_rows, "smoke grid must include a dense comparison point"
    assert all(row[4] <= 1e-12 for row in dense_rows)


if __name__ == "__main__":
    sys.exit(main())
