"""E20 (robustness) — soundness under contamination.

The paper's guarantees assume a pristine i.i.d. stream; this experiment
measures what actually happens when the stream is Huber-contaminated: a true
k-histogram's samples are replaced, at rate ``r ∈ [0, ε]``, by draws from an
adversarial fine comb (far from every small-k histogram).  The mixture drifts
away from ``H_k`` as ``r`` grows, so the acceptance rate must *degrade* from
the completeness plateau toward rejection — an empirical
soundness-under-contamination curve the paper never plots, for both the
``paper`` and ``practical`` constant profiles.

At ``r = 0`` the fault wrapper is a byte-identical passthrough, so that
column reproduces the seed completeness numbers (within the binomial CI).
Trials run under the fault-isolation policy (bounded retry, per-trial
deadline), and the grid iterates through an atomic checkpoint — interrupt
with SIGINT and rerun with ``--resume`` to continue from the last completed
point.  Results are emitted as a JSON degradation curve.

Usage::

    python benchmarks/bench_e20_robustness.py [--smoke] [--out curve.json]
        [--checkpoint e20.ckpt.json] [--fresh]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import EPS, K, N, TRIALS, check, checkpointed_loop

from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions import families
from repro.experiments.report import print_experiment
from repro.experiments.runner import robust_acceptance_probability
from repro.robustness import FaultConfig, FaultInjectingSource, RetryPolicy, TrialPolicy
from repro.util.rng import child_rng

PROFILES = ("practical", "paper")


def _rates(smoke: bool, eps: float) -> list[float]:
    steps = 3 if smoke else 6
    return [round(eps * i / (steps - 1), 6) for i in range(steps)]


def _measure_point(
    point: dict, *, n: int, k: int, eps: float, trials: int, seed: int
) -> dict:
    profile, rate = point["profile"], point["rate"]
    config = TesterConfig.paper() if profile == "paper" else TesterConfig.practical()
    contaminant = families.two_level_comb(n, teeth=max(2, n // 16))
    faults = FaultConfig(contamination_rate=rate, contaminant=contaminant)
    policy = TrialPolicy(
        retry=RetryPolicy(max_attempts=2),
        trial_timeout=120.0,
        max_failure_rate=0.5,
    )
    estimate = robust_acceptance_probability(
        lambda gen: families.staircase(n, k).to_distribution(),
        lambda src: test_histogram(src, k, eps, config=config).accept,
        trials=trials,
        rng=seed,
        policy=policy,
        wrap_source=lambda source, gen: FaultInjectingSource(
            source, faults, child_rng(gen)
        ),
    )
    return {
        "profile": profile,
        "rate": rate,
        "accept_rate": estimate.rate,
        "ci_low": estimate.ci_low,
        "ci_high": estimate.ci_high,
        "mean_samples": estimate.mean_samples,
        "failed_trials": len(estimate.failures),
        "attempted_trials": estimate.attempted,
    }


def run_curves(
    *,
    n: int = N,
    k: int = K,
    eps: float = EPS,
    trials: int = TRIALS,
    smoke: bool = False,
    checkpoint: str | None = None,
    resume: bool = True,
) -> dict:
    if smoke:
        n, trials = min(n, 2048), min(trials, 6)
    rates = _rates(smoke, eps)
    grid = [
        {"profile": profile, "rate": rate} for profile in PROFILES for rate in rates
    ]
    fingerprint = {
        "experiment": "E20",
        "n": n,
        "k": k,
        "eps": eps,
        "trials": trials,
        "rates": rates,
        "profiles": list(PROFILES),
    }
    rows = checkpointed_loop(
        grid,
        lambda point: _measure_point(
            point,
            n=n,
            k=k,
            eps=eps,
            trials=trials,
            seed=20_000 + grid.index(point),
        ),
        checkpoint=checkpoint,
        fingerprint=fingerprint,
        resume=resume,
    )
    curves = {profile: [r for r in rows if r["profile"] == profile] for profile in PROFILES}
    return {
        "experiment": "E20",
        "n": n,
        "k": k,
        "eps": eps,
        "trials": trials,
        "contaminant": "two-level comb",
        "curves": curves,
    }


def report(result: dict) -> None:
    rows = [
        [
            profile,
            point["rate"],
            point["accept_rate"],
            point["ci_low"],
            point["ci_high"],
            point["failed_trials"],
        ]
        for profile in PROFILES
        for point in result["curves"][profile]
    ]
    print_experiment(
        f"E20: acceptance under Huber contamination "
        f"(n={result['n']}, k={result['k']}, eps={result['eps']}, "
        f"{result['trials']} trials)",
        ["profile", "contam. rate", "accept rate", "99% CI low", "99% CI high", "failed"],
        rows,
    )
    for profile in PROFILES:
        curve = result["curves"][profile]
        clean, dirty = curve[0], curve[-1]
        check(f"{profile}: clean completeness >= 2/3", clean["accept_rate"] >= 2 / 3)
        check(
            f"{profile}: degrades under contamination",
            dirty["accept_rate"] <= clean["accept_rate"],
        )


def test_e20_robustness(benchmark):
    result = benchmark.pedantic(run_curves, rounds=1, iterations=1)
    report(result)
    print(json.dumps(result))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small fast grid (<60 s)")
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--k", type=int, default=K)
    parser.add_argument("--eps", type=float, default=EPS)
    parser.add_argument("--trials", type=int, default=TRIALS)
    parser.add_argument("--out", default=None, help="write the JSON curve here")
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="atomic per-point checkpoint file (matching checkpoints resume "
        "automatically after an interruption)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing checkpoint instead of resuming",
    )
    args = parser.parse_args(argv)
    result = run_curves(
        n=args.n,
        k=args.k,
        eps=args.eps,
        trials=args.trials,
        smoke=args.smoke,
        checkpoint=args.checkpoint,
        resume=not args.fresh,
    )
    report(result)
    payload = json.dumps(result, indent=2)
    print(payload)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
