"""E4 (Fig 3) — empirical sample complexity vs the domain size n.

Bisect the budget scale for the smallest 2/3-successful budget at each n
(fixed k, ε) and chart the measured samples.  Theorem 3.1's first term says
the growth should be ~√n once n dominates.
"""

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, check

from repro.core.tester import test_histogram
from repro.distributions import families
from repro.experiments import empirical_sample_complexity
from repro.experiments.report import format_series, print_experiment

K, EPS = 4, 0.3
GRID_N = [1000, 4000, 16000, 64000]


def complexity_at(n: int, rng: int):
    family = lambda scale: (
        lambda src: test_histogram(src, K, EPS, config=CONFIG.scaled(scale)).accept
    )
    return empirical_sample_complexity(
        family,
        complete=lambda g: families.staircase(n, K).to_distribution(),
        far=lambda g: families.far_from_hk(n, K, EPS, g),
        trials=9,
        bisection_steps=5,
        rng=rng,
    )


def run():
    return [complexity_at(n, rng=i) for i, n in enumerate(GRID_N)]


def test_e04_scaling_n(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    samples = [r.samples for r in results]
    rows = [
        [n, r.samples, r.scale, r.samples / math.sqrt(n)]
        for n, r in zip(GRID_N, results)
    ]
    print_experiment(
        f"E4: empirical sample complexity vs n (k={K}, eps={EPS})",
        ["n", "samples (2/3 frontier)", "budget scale", "samples/sqrt(n)"],
        rows,
    )
    print(format_series(GRID_N, samples))
    # Shape: sublinear growth, roughly sqrt-like: a 64x n increase should
    # cost well under 64x samples (sqrt predicts 8x; allow up to 24x for
    # the k-term floor and bisection noise).
    growth = samples[-1] / samples[0]
    check("growth over 64x n is sublinear (< 24x)", growth < 24)
    check("complexity increases with n", samples[-1] > samples[0])
