"""E14 (Table 5) — model selection (the intro's motivating application).

Doubling + binary search for the smallest ε-sufficient k on mixed
database-style workloads, followed by agnostic learning at the selected k.
Shape claims: selected k is ε-sufficient (verified with the exact DP), not
wildly above the minimal sufficient k, and the learned summary meets the
error target.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, check

from repro.distributions import families
from repro.distributions.distances import tv_distance
from repro.distributions.projection import flattening_profile
from repro.experiments.report import print_experiment
from repro.learning import select_k

EPS = 0.25
N = 1000  # small enough for the exact ground-truth DP profile

SCENARIOS = {
    "uniform": lambda: families.uniform(N),
    "staircase-4": lambda: families.staircase(N, 4, ratio=3.0).to_distribution(),
    "staircase-10": lambda: families.staircase(N, 10, ratio=1.8).to_distribution(),
    "bimodal": lambda: families.discretized_gaussian_mixture(
        N, centers=[0.3, 0.75], widths=[0.05, 0.09]
    ),
    "zipf": lambda: families.zipf(N, 1.0),
}


def run():
    rows = []
    for name, factory in SCENARIOS.items():
        dist = factory()
        result = select_k(dist, EPS, k_max=128, repeats=3, rng=hash(name) % 100, config=CONFIG)
        # One DP pass gives the whole distance-vs-k profile (ground truth).
        profile = flattening_profile(dist, max(80, result.k))
        k_star = int(np.argmax(profile <= EPS)) + 1 if (profile <= EPS).any() else 80
        err = tv_distance(dist, result.histogram.to_pmf())
        sufficient = bool(profile[min(result.k, len(profile)) - 1] <= 2 * EPS)
        rows.append([name, result.k, k_star, result.tests_run, err, sufficient])
    return rows


def test_e14_model_selection(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E14: model selection (n={N}, eps={EPS})",
        ["workload", "selected k", "minimal sufficient k*", "tester calls",
         "summary TV err", "2eps-sufficient"],
        rows,
    )
    for name, k_sel, k_star, _, err, sufficient in rows:
        check(f"{name}: selection 2eps-sufficient", sufficient)
        check(f"{name}: not wildly over (k <= 4k*+2)", k_sel <= 4 * k_star + 2)
        check(f"{name}: learned summary within 2eps", err <= 2 * EPS)
