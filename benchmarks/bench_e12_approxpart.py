"""E12 (Table 4) — the APPROXPART guarantees (Proposition 3.4).

For assorted distributions and values of b, measure each clause of the
proposition against the true pmf: heavy elements isolated as singletons,
non-singleton intervals at most 2/b heavy, K = O(b), and (our documented
deviation) light intervals bounded by singletons + 1 rather than by two.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import check

from repro.core.partition import approx_partition, partition_diagnostics
from repro.distributions import families
from repro.distributions.sampling import SampleSource
from repro.experiments.report import print_experiment

WORKLOADS = {
    "uniform": lambda n: families.uniform(n),
    "zipf": lambda n: families.zipf(n, 1.0),
    "staircase": lambda n: families.staircase(n, 8, ratio=2.0).to_distribution(),
    "sparse": lambda n: families.sparse_support(n, 25, rng=0),
}
N = 4000
GRID_B = [10, 40, 160]
REPEATS = 5


def run():
    rows = []
    for name, factory in WORKLOADS.items():
        dist = factory(N)
        for b in GRID_B:
            worst = {"heavy_not_singleton": 0, "overweight_non_singletons": 0,
                     "num_intervals": 0, "light_excess": 0}
            for seed in range(REPEATS):
                m = int(16 * b * np.log(b + np.e))
                part = approx_partition(SampleSource(dist, rng=seed), b, m)
                diag = partition_diagnostics(part, dist.pmf, b)
                singles = sum(1 for iv in part if iv.is_singleton)
                worst["heavy_not_singleton"] = max(
                    worst["heavy_not_singleton"], diag["heavy_not_singleton"]
                )
                worst["overweight_non_singletons"] = max(
                    worst["overweight_non_singletons"], diag["overweight_non_singletons"]
                )
                worst["num_intervals"] = max(worst["num_intervals"], diag["num_intervals"])
                worst["light_excess"] = max(
                    worst["light_excess"], diag["light_intervals"] - singles - 1
                )
            rows.append(
                [name, b, worst["heavy_not_singleton"],
                 worst["overweight_non_singletons"], worst["num_intervals"],
                 int(4 * b + 2), worst["light_excess"]]
            )
    return rows


def test_e12_approxpart(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        f"E12: APPROXPART guarantees (n={N}, worst over {REPEATS} runs)",
        ["workload", "b", "heavy!=singleton", ">2/b intervals", "K", "4b+2 bound",
         "light - (singletons+1)"],
        rows,
    )
    for name, b, heavy_bad, overweight, big_k, bound, light_excess in rows:
        check(f"{name} b={b}: heavy are singletons", heavy_bad == 0)
        check(f"{name} b={b}: non-singletons <= 2/b", overweight == 0)
        check(f"{name} b={b}: K = O(b)", big_k <= bound)
        check(f"{name} b={b}: light bounded", light_excess <= 0)
