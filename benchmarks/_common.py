"""Shared scaffolding for the experiment benchmarks (E1–E20).

Each ``bench_eNN_*.py`` regenerates one table/figure from DESIGN.md's
experiment index and prints it through
:func:`repro.experiments.report.print_experiment`.  Absolute numbers are
machine-dependent; the *shape* assertions (who wins, monotonicity,
threshold locations) are encoded as soft checks that print WARN rather than
fail, since benchmarks are measurements, not tests.

Long-running benchmarks iterate their grid through
:func:`checkpointed_loop`, which persists completed rows to an atomic JSON
checkpoint after every point — a benchmark killed mid-run (SIGINT, OOM)
resumes from the last completed point instead of starting over.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

from repro.core.config import TesterConfig
from repro.robustness.checkpoint import load_if_matching, resolve_store

#: The default scale every benchmark runs at unless it sweeps the axis.
N = 4096
K = 5
EPS = 0.3
TRIALS = 12
CONFIG = TesterConfig.practical()


def bench_workers(default: int | None = None) -> int | None:
    """Worker count for benchmark trial loops, from ``REPRO_WORKERS``.

    Unset/empty → ``default`` (serial); ``0`` → one worker per CPU; ``N`` →
    N processes.  Results are bit-identical at any value (the engine's
    determinism contract), so benchmarks may be parallelised freely without
    changing their tables.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise SystemExit(f"REPRO_WORKERS must be an integer, got {raw!r}") from exc
    if value < 0:
        raise SystemExit(f"REPRO_WORKERS must be non-negative, got {value}")
    return value


#: Resolved once so every benchmark honours the same setting.
WORKERS = bench_workers()


def check(label: str, condition: bool) -> None:
    """Soft shape assertion: print PASS/WARN without failing the bench."""
    print(f"  shape[{label}]: {'PASS' if condition else 'WARN'}")


def checkpointed_loop(
    points: Sequence[Any],
    compute: Callable[[Any], Any],
    *,
    checkpoint: "str | os.PathLike | None" = None,
    fingerprint: dict[str, Any] | None = None,
    resume: bool = True,
) -> list[Any]:
    """Map ``compute`` over ``points``, checkpointing one row per point.

    Rows must be JSON-serialisable.  With a ``checkpoint`` path, completed
    rows are saved atomically after every point; a rerun with a matching
    ``fingerprint`` (and ``resume=True``) skips the already-computed prefix.
    A mismatched fingerprint — different grid, profile, or trial count —
    discards the stale checkpoint rather than splicing incompatible rows.
    """
    store = resolve_store(checkpoint)
    if store is None:
        return [compute(point) for point in points]
    fingerprint = fingerprint or {}
    rows: list[Any] = []
    if resume:
        state = load_if_matching(store, fingerprint)
        if state is not None:
            rows = list(state.get("rows", []))[: len(points)]
            if rows:
                print(f"  (resumed {len(rows)}/{len(points)} points from {store.path})")
    else:
        store.clear()
    for point in points[len(rows) :]:
        rows.append(compute(point))
        store.save({"fingerprint": fingerprint, "rows": rows})
    return rows
