"""Shared scaffolding for the experiment benchmarks (E1–E20).

Each ``bench_eNN_*.py`` regenerates one table/figure from DESIGN.md's
experiment index and prints it through
:func:`repro.experiments.report.print_experiment`.  Absolute numbers are
machine-dependent; the *shape* assertions (who wins, monotonicity,
threshold locations) are encoded as soft checks that print WARN rather than
fail, since benchmarks are measurements, not tests.

Long-running benchmarks iterate their grid through
:func:`checkpointed_loop`, which persists completed rows to an atomic JSON
checkpoint after every point — a benchmark killed mid-run (SIGINT, OOM)
resumes from the last completed point instead of starting over.
"""

from __future__ import annotations

import os
import platform
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.backends import BACKENDS, DEFAULT_BACKEND
from repro.core.config import TesterConfig
from repro.robustness.checkpoint import load_if_matching, resolve_store
from repro.util.atomicio import atomic_write_json

#: The default scale every benchmark runs at unless it sweeps the axis.
N = 4096
K = 5
EPS = 0.3
TRIALS = 12
CONFIG = TesterConfig.practical()


def bench_workers(default: int | None = None) -> int | None:
    """Worker count for benchmark trial loops, from ``REPRO_WORKERS``.

    Unset/empty → ``default`` (serial); ``0`` → one worker per CPU; ``N`` →
    N processes.  Results are bit-identical at any value (the engine's
    determinism contract), so benchmarks may be parallelised freely without
    changing their tables.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise SystemExit(f"REPRO_WORKERS must be an integer, got {raw!r}") from exc
    if value < 0:
        raise SystemExit(f"REPRO_WORKERS must be non-negative, got {value}")
    return value


#: Resolved once so every benchmark honours the same setting.
WORKERS = bench_workers()


def bench_backend(default: str = DEFAULT_BACKEND) -> str:
    """Tester backend for benchmark runs, from ``REPRO_BACKEND``.

    Unset/empty → ``default``.  Unlike ``REPRO_WORKERS`` this knob *does*
    change the numbers (backends have different budgets and verdict paths),
    which is exactly the point: CI's backend-matrix job reruns the generic
    benchmarks under each backend by exporting this variable.  E25 ignores
    it — that benchmark always measures both backends head-to-head.
    """
    raw = os.environ.get("REPRO_BACKEND", "").strip()
    if not raw:
        return default
    if raw not in BACKENDS:
        raise SystemExit(
            f"REPRO_BACKEND must be one of {BACKENDS}, got {raw!r}"
        )
    return raw


#: Resolved once so every benchmark honours the same setting.
BACKEND = bench_backend()


def bench_kernel(default: str = "auto") -> str:
    """Compute kernel for benchmark runs, from ``REPRO_KERNEL``.

    Unset/empty → ``default`` (``"auto"``: numba when installed, else the
    canonical numpy kernels).  Like ``REPRO_WORKERS`` — and unlike
    ``REPRO_BACKEND`` — this knob never changes a table's *numbers*, only
    how fast they are produced; CI's kernel-matrix job exports it to time
    both implementations of the same bit-identical computation.
    """
    raw = os.environ.get("REPRO_KERNEL", "").strip()
    if not raw:
        return default
    from repro.kernels import KERNELS

    if raw not in KERNELS:
        raise SystemExit(f"REPRO_KERNEL must be one of {KERNELS}, got {raw!r}")
    return raw


#: Resolved once so every benchmark honours the same setting.
KERNEL = bench_kernel()


def check(label: str, condition: bool) -> None:
    """Soft shape assertion: print PASS/WARN without failing the bench."""
    print(f"  shape[{label}]: {'PASS' if condition else 'WARN'}")


def write_bench_json(
    name: str,
    *,
    params: dict[str, Any],
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    metrics: dict[str, Any] | None = None,
    path: "str | os.PathLike | None" = None,
) -> Path:
    """Persist a benchmark's table as machine-readable ``BENCH_<name>.json``.

    The schema is deliberately small and stable — perf-regression tooling
    (``benchmarks/check_perf_regression.py``) diffs these files across
    commits, so keys here are a compatibility surface:

    * ``bench``: the experiment tag ("e21", "e22", …);
    * ``params``: the grid/profile the run used;
    * ``columns`` + ``rows``: the printed table, verbatim;
    * ``metrics``: named scalars (slopes, speedups) for direct comparison;
    * ``host`` / ``created_unix``: provenance only, never compared.

    ``path`` defaults to ``BENCH_<name>.json`` in the working directory.
    """
    out = Path(path) if path is not None else Path(f"BENCH_{name}.json")
    payload = {
        "bench": name,
        "params": dict(params),
        "columns": list(columns),
        "rows": [list(row) for row in rows],
        "metrics": dict(metrics or {}),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "created_unix": time.time(),
    }
    # Durable atomic replace (tmp + fsync + rename + dir fsync): a crash
    # mid-write must never leave a torn BENCH_*.json for the regression
    # gates to choke on.
    atomic_write_json(out, payload, indent=2, sort_keys=True)
    print(f"  wrote {out}")
    return out


def checkpointed_loop(
    points: Sequence[Any],
    compute: Callable[[Any], Any],
    *,
    checkpoint: "str | os.PathLike | None" = None,
    fingerprint: dict[str, Any] | None = None,
    resume: bool = True,
) -> list[Any]:
    """Map ``compute`` over ``points``, checkpointing one row per point.

    Rows must be JSON-serialisable.  With a ``checkpoint`` path, completed
    rows are saved atomically after every point; a rerun with a matching
    ``fingerprint`` (and ``resume=True``) skips the already-computed prefix.
    A mismatched fingerprint — different grid, profile, or trial count —
    discards the stale checkpoint rather than splicing incompatible rows.
    """
    store = resolve_store(checkpoint)
    if store is None:
        return [compute(point) for point in points]
    fingerprint = fingerprint or {}
    rows: list[Any] = []
    if resume:
        state = load_if_matching(store, fingerprint)
        if state is not None:
            rows = list(state.get("rows", []))[: len(points)]
            if rows:
                print(f"  (resumed {len(rows)}/{len(points)} points from {store.path})")
    else:
        store.clear()
    for point in points[len(rows) :]:
        rows.append(compute(point))
        store.save({"fingerprint": fingerprint, "rows": rows})
    return rows
