"""Shared scaffolding for the experiment benchmarks (E1–E16).

Each ``bench_eNN_*.py`` regenerates one table/figure from DESIGN.md's
experiment index and prints it through
:func:`repro.experiments.report.print_experiment`.  Absolute numbers are
machine-dependent; the *shape* assertions (who wins, monotonicity,
threshold locations) are encoded as soft checks that print WARN rather than
fail, since benchmarks are measurements, not tests.
"""

from __future__ import annotations

from repro.core.config import TesterConfig

#: The default scale every benchmark runs at unless it sweeps the axis.
N = 4096
K = 5
EPS = 0.3
TRIALS = 12
CONFIG = TesterConfig.practical()


def check(label: str, condition: bool) -> None:
    """Soft shape assertion: print PASS/WARN without failing the bench."""
    print(f"  shape[{label}]: {'PASS' if condition else 'WARN'}")
