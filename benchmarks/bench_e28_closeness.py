"""E28 — closeness vs naive double-identity: head-to-head.

Deciding ``p = q`` versus ``dTV(p, q) ≥ ε`` given two k-histogram streams.
The obvious-but-wrong baseline runs the one-sample identity tester on each
stream separately and accepts iff both accept.  On the closeness instance
families both streams *are* k-histograms, so the baseline accepts every
pair — close or ε-far — and its far-side acceptance count is the measured
proof that identity testing cannot answer the two-sample question.  The
DKN17 reduction (:func:`repro.core.closeness.test_closeness`) answers it
at comparable per-trial sample cost: shared union partition, per-stream
learn + sieve, then the paired CDVV14 statistic on the interval counts.

Per domain size the benchmark measures:

* **closeness fn / fp** — the real tester's completeness and soundness
  errors over fixed-seed trials, each against the exact binomial bound for
  per-trial error rate 1/3 (the paper's guarantee);
* **naive far-accepts** — how many ε-far pairs the double-identity
  baseline waves through (expected: all of them);
* **samples/trial** for both testers and their ratio;
* **wall seconds** per cell.

``check_closeness_regression.py`` gates the binomial error bounds and the
baseline's blindness absolutely (correctness never takes a hardware
factor) and the wall clock against ``BENCH_e28_baseline.json`` with
``REPRO_PERF_FACTOR`` headroom.

Emits ``BENCH_e28.json``.  The grid iterates through
:func:`checkpointed_loop`, so a killed run resumes per cell.

Usage::

    python benchmarks/bench_e28_closeness.py [--smoke]
        [--trials T] [--json PATH] [--checkpoint PATH]
"""

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import CONFIG, WORKERS, check, checkpointed_loop, write_bench_json

from scipy import stats

from repro.core.closeness import closeness_budget
from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.experiments.runner import acceptance_probability
from repro.experiments.sweeps import PairedClosenessTester
from repro.experiments.workloads import BoundPairedWorkload

SEED = 28
K, EPS = 4, 0.4
YES_WORKLOAD = "identical-staircase"  # p = q: errors here are false negatives
NO_WORKLOAD = "shifted-staircase"  # certified eps-far pair of k-histograms

#: Same flake budget as tests/calibration: if the tester only just met the
#: paper's 1/3 error bound, exceeding binom.ppf(1-FLAKE_P, trials, 1/3)
#: errors has probability below FLAKE_P.
FLAKE_P = 1e-6


@dataclass(frozen=True)
class NaiveDoubleIdentityTester:
    """The baseline: one-sample identity test per stream, AND the verdicts.

    Both closeness workload streams are genuine k-histograms, so this
    accepts (w.h.p.) regardless of the distance between them — it tests
    the promise, not the closeness question.
    """

    k: int
    eps: float
    config: TesterConfig

    def __call__(self, pair) -> bool:
        accept_p = test_histogram(pair.p, self.k, self.eps, config=self.config).accept
        accept_q = test_histogram(pair.q, self.k, self.eps, config=self.config).accept
        return accept_p and accept_q


def measure_cell(n: int, trials: int) -> list:
    """One domain size: closeness on both sides + the baseline on the far
    side (its close-side acceptance is trivially high; the far side is
    where the blindness shows)."""
    closeness = PairedClosenessTester(K, EPS, CONFIG)
    naive = NaiveDoubleIdentityTester(K, EPS, CONFIG)
    start = time.perf_counter()
    yes = acceptance_probability(
        BoundPairedWorkload(YES_WORKLOAD, n, K, EPS), closeness,
        trials=trials, rng=SEED, workers=WORKERS,
    )
    no = acceptance_probability(
        BoundPairedWorkload(NO_WORKLOAD, n, K, EPS), closeness,
        trials=trials, rng=SEED + 1, workers=WORKERS,
    )
    naive_no = acceptance_probability(
        BoundPairedWorkload(NO_WORKLOAD, n, K, EPS), naive,
        trials=trials, rng=SEED + 2, workers=WORKERS,
    )
    wall = time.perf_counter() - start
    fn_errors = trials - round(yes.rate * trials)
    fp_errors = round(no.rate * trials)
    naive_far_accepts = round(naive_no.rate * trials)
    closeness_samples = 0.5 * (yes.mean_samples + no.mean_samples)
    naive_samples = naive_no.mean_samples
    ratio = closeness_samples / naive_samples if naive_samples else float("inf")
    return [
        n, fn_errors, fp_errors, naive_far_accepts,
        round(closeness_samples, 1), round(naive_samples, 1),
        round(ratio, 4), round(wall, 3),
    ]


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI grid (one n, fewer trials)")
    parser.add_argument("--trials", type=int, default=None,
                        help="trials per cell and side (default 60; smoke 20)")
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="resume a killed grid from this JSON file")
    args = parser.parse_args(argv)
    grid = (2000,) if args.smoke else (2000, 4000, 8000)
    trials = args.trials if args.trials is not None else (20 if args.smoke else 60)
    max_errors = int(stats.binom.ppf(1 - FLAKE_P, trials, 1.0 / 3.0))

    rows = checkpointed_loop(
        list(grid),
        lambda n: measure_cell(n, trials),
        checkpoint=args.checkpoint,
        fingerprint={"grid": list(grid), "trials": trials, "seed": SEED,
                     "k": K, "eps": EPS,
                     "workloads": [YES_WORKLOAD, NO_WORKLOAD]},
    )

    columns = ["n", "closeness fn", "closeness fp", "naive far-accepts",
               "closeness samples", "naive samples", "ratio", "wall s"]
    from repro.experiments.report import print_experiment

    print_experiment(
        f"E28: closeness vs naive double-identity, k={K}, eps={EPS}, "
        f"{trials} trials/side (yes={YES_WORKLOAD}, no={NO_WORKLOAD})",
        columns, rows,
    )

    worst_errors = max(max(row[1], row[2]) for row in rows)
    fewest_naive_accepts = min(row[3] for row in rows)
    largest = max(grid)
    by_n = {row[0]: row for row in rows}

    check(f"closeness error counts within binomial bound {max_errors}",
          worst_errors <= max_errors)
    check("naive double-identity is blind to eps-far pairs",
          fewest_naive_accepts >= trials - max_errors)
    check("closeness costs at most ~2x the naive baseline per trial",
          by_n[largest][6] <= 2.0)
    check("measured samples stay within the closed-form joint budget",
          by_n[largest][4] <= closeness_budget(largest, K, EPS, CONFIG))

    write_bench_json(
        "e28",
        params={
            "grid": list(grid), "k": K, "eps": EPS, "trials": trials,
            "seed": SEED, "workers": WORKERS, "smoke": args.smoke,
            "yes_workload": YES_WORKLOAD, "no_workload": NO_WORKLOAD,
        },
        columns=columns,
        rows=rows,
        metrics={
            "max_errors_allowed": max_errors,
            "worst_closeness_errors": worst_errors,
            "naive_blind_bound": trials - max_errors,
            "fewest_naive_far_accepts": fewest_naive_accepts,
            "sample_ratio_by_n": {str(row[0]): row[6] for row in rows},
            "closeness_seconds_by_n": {str(row[0]): row[7] for row in rows},
        },
        path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
