"""CI perf-smoke gate: fail on >2x regression vs the committed baseline.

Compares a freshly produced ``BENCH_e22.json`` (see
``bench_e22_projection_scaling.py``) against
``benchmarks/baselines/BENCH_e22_baseline.json``.  Two gates:

* **throughput** — for every domain size the baseline covers, the fresh
  fast-engine time must stay within ``--factor`` (default 2.0) of the
  baseline's; the baseline already carries headroom for slower CI hosts
  (see the note inside the baseline file);
* **correctness** — wherever the fresh run compared engines, the max
  fast-vs-dense discrepancy must stay <= 1e-12 (this one has no factor:
  golden equivalence never regresses).

``REPRO_PERF_FACTOR`` overrides ``--factor`` (e.g. a known-slow runner).

Usage::

    python benchmarks/check_perf_regression.py BENCH_e22.json
        [--baseline PATH] [--factor 2.0]
"""

import argparse
import json
import math
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_e22_baseline.json"


def load(path: "str | Path") -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "metrics" not in data or "bench" not in data:
        raise SystemExit(f"{path}: not a BENCH_*.json payload")
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_e22.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--factor", type=float, default=None,
                        help="allowed slowdown vs baseline (default 2.0)")
    args = parser.parse_args(argv)

    factor = args.factor
    if factor is None:
        factor = float(os.environ.get("REPRO_PERF_FACTOR", "2.0"))
    if factor <= 0:
        raise SystemExit(f"factor must be positive, got {factor}")

    fresh, base = load(args.fresh), load(args.baseline)
    if fresh["bench"] != base["bench"]:
        raise SystemExit(
            f"bench mismatch: fresh={fresh['bench']!r} baseline={base['bench']!r}"
        )

    base_times = base["metrics"].get("fast_seconds_by_n", {})
    fresh_times = fresh["metrics"].get("fast_seconds_by_n", {})
    shared = sorted(set(base_times) & set(fresh_times), key=int)
    if not shared:
        raise SystemExit("no shared domain sizes between fresh run and baseline")

    failures = []
    print(f"perf gate: fresh <= {factor:g}x baseline ({len(shared)} sizes)")
    for n in shared:
        allowed = factor * base_times[n]
        got = fresh_times[n]
        verdict = "ok" if got <= allowed else "REGRESSION"
        print(f"  n={n:>6}: {got:8.3f}s vs allowed {allowed:8.3f}s  {verdict}")
        if got > allowed:
            failures.append(n)

    diff = fresh["metrics"].get("max_engine_diff", math.nan)
    if not math.isnan(diff):
        print(f"correctness gate: max engine diff {diff:.3g} (<= 1e-12)")
        if diff > 1e-12:
            failures.append("engine-diff")

    if failures:
        print(f"FAIL: {failures}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
